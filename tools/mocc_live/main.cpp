// mocc_live — progress/health console over streaming-audit time series
// (obs/timeseries.hpp, lines produced by obs::TimeSeriesWriter).
//
//   mocc_live series.jsonl            # render the stream as a report
//   mocc_live --follow series.jsonl   # tail the file as a run streams it
//   mocc_live --demo                  # in-process run streaming into
//                                     # mocc_live_demo.jsonl, then report
//   mocc_live --demo --mutation=skip-delivery --objects=1   # failure demo
//   mocc_live --selftest              # live-vs-post-hoc agreement sweep
//
// The report shows throughput (m-operations per 1000 time units between
// samples), streaming-audit window verdicts, and trace-sink drop
// accounting. Exit status mirrors the stream's final audit_verdict
// gauge: 0 ok, 1 violation, 3 inconclusive (2 is reserved for usage
// errors, matching the other CLIs).
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/system.hpp"
#include "core/relations.hpp"
#include "obs/analysis.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "protocols/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using mocc::core::Condition;
using mocc::obs::StreamVerdict;
using mocc::obs::TimeSeriesFile;
using mocc::obs::TimeSeriesPoint;

int fail(const std::string& message) {
  std::cerr << "mocc_live: " << message << "\n";
  return 2;
}

void print_usage(const std::string& program) {
  std::cout
      << "usage: " << program << " [options] [series.jsonl]\n"
      << "  (no flags)         render the time-series stream as a report\n"
      << "  --follow           tail the file: render samples as they land,\n"
      << "                     exit once the stream idles (see --max-idle)\n"
      << "  --max-idle=SEC     --follow exits after SEC seconds without new\n"
      << "                     samples (default 10)\n"
      << "  --demo             run an in-process simulation that streams to\n"
      << "                     --out while a StreamingAuditor watches it\n"
      << "  --out=PATH         --demo stream path (default mocc_live_demo.jsonl)\n"
      << "  --protocol=NAME    --demo protocol (default mlin)\n"
      << "  --broadcast=NAME   --demo broadcast: sequencer (default) | isis\n"
      << "  --mutation=NAME    --demo protocol mutation (must be caught)\n"
      << "  --window=N         --demo streaming window (default 512)\n"
      << "  --objects=N        --demo object count (default 8)\n"
      << "  --ops=N            --demo m-operations per process (default 40)\n"
      << "  --seed=N           --demo seed (default 42)\n"
      << "  --selftest         live-vs-post-hoc agreement sweep (clean runs\n"
      << "                     must agree, mutated runs must be caught)\n";
}

std::string verdict_cell(double verdict) {
  if (verdict == 0.0) return "ok";
  if (verdict == 1.0) return "VIOLATION";
  return "inconclusive";
}

/// Renders points [from, points.size()) as table rows; returns the
/// rendered row count. Throughput is measured between consecutive
/// samples (m-operations per 1000 time units — per-second when the
/// producer stamps wallclock milliseconds, per-kilotick under virtual
/// time).
std::size_t render_points(const TimeSeriesFile& series, std::size_t from,
                          bool header) {
  mocc::util::Table table({"seq", "t", "mops", "ops/kt", "win ok", "win fail",
                           "win undec", "drops", "verdict"});
  for (std::size_t i = from; i < series.points.size(); ++i) {
    const TimeSeriesPoint& p = series.points[i];
    double rate = 0.0;
    if (i > 0) {
      const TimeSeriesPoint& prev = series.points[i - 1];
      const double dt = static_cast<double>(p.t - prev.t);
      const double dm = p.value("counters/audit_mops") -
                        prev.value("counters/audit_mops");
      if (dt > 0.0) rate = 1000.0 * dm / dt;
    }
    const double drops = p.value("counters/trace_events_dropped") +
                         p.value("counters/trace_spans_dropped");
    table.add_row({mocc::util::Table::num(p.seq),
                   mocc::util::Table::num(p.t),
                   mocc::util::Table::num(p.value("counters/audit_mops"), 0),
                   mocc::util::Table::num(rate),
                   mocc::util::Table::num(p.value("counters/audit_windows_passed"), 0),
                   mocc::util::Table::num(p.value("counters/audit_windows_failed"), 0),
                   mocc::util::Table::num(p.value("counters/audit_windows_undecided"), 0),
                   mocc::util::Table::num(drops, 0),
                   verdict_cell(p.value("gauges/audit_verdict"))});
  }
  if (from >= series.points.size()) return 0;
  std::string rendered = table.render();
  if (!header) {
    // Tail mode re-renders only new rows: drop the header + rule lines.
    std::size_t cut = 0;
    for (int lines = 0; lines < 2 && cut != std::string::npos; ++lines) {
      cut = rendered.find('\n', cut);
      if (cut != std::string::npos) ++cut;
    }
    if (cut != std::string::npos) rendered = rendered.substr(cut);
  }
  std::cout << rendered;
  return series.points.size() - from;
}

/// Health summary from the final sample; returns the exit code.
int summarize(const TimeSeriesFile& series) {
  if (series.points.empty()) {
    std::cout << "stream is empty (no samples)\n";
    return 3;
  }
  const TimeSeriesPoint& last = series.points.back();
  const double verdict = last.value("gauges/audit_verdict");
  const double dropped = last.value("counters/trace_events_dropped") +
                         last.value("counters/trace_spans_dropped");
  std::cout << "\nstream health: " << series.points.size() << " samples, "
            << last.value("counters/audit_mops") << " m-operations audited, "
            << last.value("counters/audit_windows") << " windows ("
            << last.value("counters/audit_windows_passed") << " ok, "
            << last.value("counters/audit_windows_failed") << " failed, "
            << last.value("counters/audit_windows_undecided") << " undecided), "
            << dropped << " sink drops\n"
            << "final verdict: " << verdict_cell(verdict) << "\n";
  if (verdict == 1.0) return 1;
  if (verdict != 0.0) return 3;
  return 0;
}

bool load_file(const std::string& path, TimeSeriesFile* series,
               std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  if (!mocc::obs::load_timeseries_jsonl(in, series, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

int run_report(const std::string& path) {
  TimeSeriesFile series;
  std::string error;
  if (!load_file(path, &series, &error)) return fail(error);
  if (!series.has_header && !series.points.empty()) {
    return fail(path + ": samples without a ts_header line");
  }
  render_points(series, 0, /*header=*/true);
  return summarize(series);
}

int run_follow(const std::string& path, std::int64_t max_idle_seconds) {
  // Polling tail: reload and render only unseen samples. The producer
  // appends whole lines, so a reload mid-write at worst defers the last
  // sample to the next poll (the loader fails only on malformed lines,
  // and a torn final line without '\n' is not parsed as a line yet...
  // to stay robust we simply retry on load errors while following).
  std::size_t seen = 0;
  bool printed_header = false;
  auto last_growth = std::chrono::steady_clock::now();
  for (;;) {
    TimeSeriesFile series;
    std::string error;
    if (load_file(path, &series, &error)) {
      if (series.points.size() > seen) {
        render_points(series, printed_header ? seen : 0, !printed_header);
        printed_header = true;
        seen = series.points.size();
        last_growth = std::chrono::steady_clock::now();
        const double verdict =
            series.points.back().value("gauges/audit_verdict");
        if (verdict == 1.0) return summarize(series);
      }
    }
    const auto idle = std::chrono::steady_clock::now() - last_growth;
    if (idle > std::chrono::seconds(max_idle_seconds)) {
      TimeSeriesFile final_series;
      if (!load_file(path, &final_series, &error)) return fail(error);
      if (!printed_header) render_points(final_series, 0, true);
      return summarize(final_series);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

struct DemoOptions {
  std::string out = "mocc_live_demo.jsonl";
  std::string protocol = "mlin";
  std::string broadcast = "sequencer";
  std::string mutation;
  std::size_t objects = 8;
  std::size_t ops = 40;
  std::size_t window = 0;  // 0 = auditor default
  std::uint64_t seed = 42;
};

/// End-to-end wiring demo: System streams registry samples on its
/// backlog probe cadence while the StreamingAuditor audits the trace
/// tap; the auditor publishes its progress into the sampled registry
/// through a collector. Then the written file is rendered like any
/// other stream.
int run_demo(const DemoOptions& demo) {
  mocc::api::SystemConfig config;
  config.protocol = demo.protocol;
  config.broadcast = demo.broadcast;
  config.num_processes = 3;
  config.num_objects = demo.objects;
  config.delay = "lan";
  config.seed = demo.seed;
  config.mutation = demo.mutation;
  config.backlog_sample_interval = 16;

  mocc::obs::StreamingAuditorOptions live_options;
  live_options.condition = demo.protocol == "mseq"
                               ? Condition::kMSequentialConsistency
                               : Condition::kMLinearizability;
  if (demo.window != 0) live_options.window = demo.window;
  mocc::obs::StreamingAuditor auditor(live_options);

  std::ofstream out(demo.out, std::ios::binary | std::ios::trunc);
  if (!out) return fail("cannot open " + demo.out + " for writing");
  mocc::obs::Registry registry;
  mocc::obs::TimeSeriesWriter writer(out);
  writer.add_collector(
      [&auditor](mocc::obs::Registry& r) { auditor.export_metrics(r); });

  mocc::api::System system(config);
  system.set_trace_sink(&auditor);
  system.set_metrics_registry(&registry);
  system.set_timeseries(&writer);
  auditor.set_violation_callback(
      [&system](const mocc::obs::StreamingReport&) { system.request_stop(); });

  mocc::protocols::WorkloadParams workload;
  workload.ops_per_process = demo.ops;
  workload.update_ratio = 0.5;
  workload.footprint = 2;
  system.run_workload(workload);

  const mocc::obs::StreamingReport& report = auditor.finish();
  auditor.export_metrics(registry);
  writer.sample(registry, system.now());
  out.flush();

  std::cout << "demo: " << demo.protocol
            << (demo.mutation.empty() ? "" : " mutation=" + demo.mutation)
            << " seed=" << demo.seed << " -> " << demo.out << "\n"
            << "streaming audit: " << report.to_string() << "\n\n";
  return run_report(demo.out);
}

/// One selftest run: live auditor on the trace tap, ring sink
/// downstream, then the post-hoc trace audit over the same JSONL
/// round-trip trace_query uses.
struct SelftestRun {
  StreamVerdict live = StreamVerdict::kOk;
  std::size_t live_mops = 0;
  bool posthoc_ok = false;
  std::size_t posthoc_mops = 0;
  std::string detail;
};

SelftestRun selftest_run(const std::string& protocol,
                         const std::string& broadcast,
                         const std::string& mutation, std::size_t objects,
                         std::uint64_t seed) {
  mocc::api::SystemConfig config;
  config.protocol = protocol;
  config.broadcast = broadcast;
  config.num_processes = 3;
  config.num_objects = objects;
  config.delay = "lan";
  config.seed = seed;
  config.mutation = mutation;

  const Condition condition = protocol == "mseq"
                                  ? Condition::kMSequentialConsistency
                                  : Condition::kMLinearizability;
  mocc::obs::StreamingAuditorOptions live_options;
  live_options.condition = condition;
  live_options.window = 8;  // several cuts even on small runs
  mocc::obs::StreamingAuditor auditor(live_options);
  mocc::obs::RingBufferSink ring(std::size_t{1} << 18);
  auditor.set_downstream(&ring);

  mocc::api::System system(config);
  system.set_trace_sink(&auditor);
  mocc::protocols::WorkloadParams workload;
  workload.ops_per_process = 8;
  workload.update_ratio = 0.5;
  workload.footprint = 2;
  system.run_workload(workload);

  SelftestRun run;
  run.live = auditor.finish().verdict;
  run.live_mops = auditor.report().mops;
  run.detail = auditor.report().detail;

  std::stringstream jsonl;
  mocc::obs::write_trace_jsonl(jsonl, ring);
  mocc::obs::TraceFile trace;
  std::string error;
  if (!mocc::obs::load_trace_jsonl(jsonl, &trace, &error)) {
    run.posthoc_ok = false;
    run.detail = "trace round-trip failed: " + error;
    return run;
  }
  const mocc::obs::TraceAudit audit =
      mocc::obs::audit_from_trace(trace, condition);
  run.posthoc_ok = audit.ok;
  run.posthoc_mops = audit.mops;
  if (!audit.ok && run.detail.empty()) run.detail = audit.detail;
  return run;
}

int run_selftest() {
  std::size_t failed = 0;
  const auto report = [&failed](bool ok, const std::string& label,
                                const std::string& detail) {
    if (!ok) ++failed;
    std::cout << (ok ? "ok  " : "FAIL") << "  " << label;
    if (!detail.empty()) std::cout << "  " << detail;
    std::cout << "\n";
  };

  // Clean runs: the live verdict must be ok (drops cannot occur — the
  // auditor sees every event) and must agree with the post-hoc trace
  // audit, over the same m-operation count. Both broadcast algorithms
  // run for the abcast protocols (locking ignores the knob).
  for (const std::string protocol : {"mseq", "mlin", "locking"}) {
    for (const std::uint64_t seed : {1ull, 7ull, 13ull}) {
      const bool abcast = protocol != "locking";
      for (const std::string& broadcast :
           abcast ? std::vector<std::string>{"sequencer", "isis"}
                  : std::vector<std::string>{"sequencer"}) {
        const SelftestRun run = selftest_run(protocol, broadcast, "", 8, seed);
        std::ostringstream label;
        label << "clean " << protocol << "/" << broadcast << " seed=" << seed;
        const bool ok = run.live == StreamVerdict::kOk && run.posthoc_ok &&
                        run.live_mops == run.posthoc_mops;
        std::ostringstream detail;
        detail << "live=" << mocc::obs::to_string(run.live)
               << " posthoc=" << (run.posthoc_ok ? "ok" : "violation")
               << " mops=" << run.live_mops << "/" << run.posthoc_mops;
        if (!ok && !run.detail.empty()) detail << "  " << run.detail;
        report(ok, label.str(), detail.str());
      }
    }
  }

  // Mutated runs: soundness per run (a live violation implies the
  // post-hoc audit also rejects — the window projection never invents
  // violations), and at least one mid-stream catch across the seeds so
  // the leg cannot pass vacuously. seq-swap is excluded here: its
  // random-schedule manifestations are usually protocol-internal
  // timestamp violations (P5.3/P5.4), invisible at the history level
  // both these checkers audit (mocc_check finds its history-level
  // schedules by exhaustive search).
  for (const std::string protocol : {"mseq", "mlin"}) {
    std::size_t caught = 0;
    std::size_t runs = 0;
    bool sound = true;
    std::string unsound_detail;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const std::string broadcast = seed % 2 == 1 ? "sequencer" : "isis";
      const SelftestRun run =
          selftest_run(protocol, broadcast, "skip-delivery", 1, seed);
      ++runs;
      if (run.live == StreamVerdict::kViolation) {
        ++caught;
        if (run.posthoc_ok) {
          sound = false;
          unsound_detail = "seed " + std::to_string(seed) +
                           " flagged live but passes post-hoc: " + run.detail;
        }
      }
    }
    std::ostringstream label;
    label << "mutated " << protocol << "/skip-delivery";
    std::ostringstream detail;
    detail << caught << "/" << runs << " caught live";
    if (!sound) detail << "  " << unsound_detail;
    report(sound && caught > 0, label.str(), detail.str());
  }

  std::cout << "selftest: " << (failed == 0 ? "passed" : "FAILED") << "\n";
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  mocc::util::CliArgs args(argc, argv);
  if (args.get_bool("help", false)) {
    print_usage(args.program_name());
    return 0;
  }
  const bool selftest = args.get_bool("selftest", false);
  const bool demo = args.get_bool("demo", false);
  const bool follow = args.get_bool("follow", false);
  const std::int64_t max_idle = args.get_int("max-idle", 10);
  DemoOptions demo_options;
  demo_options.out = args.get_string("out", demo_options.out);
  demo_options.protocol = args.get_string("protocol", demo_options.protocol);
  demo_options.broadcast = args.get_string("broadcast", demo_options.broadcast);
  demo_options.mutation = args.get_string("mutation", "");
  demo_options.window = static_cast<std::size_t>(args.get_int("window", 0));
  demo_options.objects = static_cast<std::size_t>(
      args.get_int("objects", static_cast<std::int64_t>(demo_options.objects)));
  demo_options.ops = static_cast<std::size_t>(
      args.get_int("ops", static_cast<std::int64_t>(demo_options.ops)));
  demo_options.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(demo_options.seed)));
  const auto unused = args.unused();
  if (!unused.empty()) {
    return fail("unknown flag --" + unused.front() + " (try --help)");
  }

  if (selftest) return run_selftest();
  if (demo) return run_demo(demo_options);
  if (args.positional().empty()) {
    print_usage(args.program_name());
    return 2;
  }
  const std::string path = args.positional().front();
  if (follow) return run_follow(path, max_idle);
  return run_report(path);
}
