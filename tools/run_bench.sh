#!/usr/bin/env bash
# Benchmark artifact driver for the mocc tree.
#
# Usage: tools/run_bench.sh [--smoke] [--only=E1,E5] [--print]
#                           [--out=PATH] [--trace=PATH] [--wallclock]
#
# Builds the bench_report driver (build/ is configured on first use) and
# runs the E1-E10 experiment suite, writing the schema-versioned
# BENCH_results.json artifact at the repo root (schema documented in
# docs/observability.md). The artifact carries only deterministic
# virtual-time metrics, so rerunning with the same flags produces a
# byte-identical file — diff it, golden-test it, or feed it to the table
# generators in EXPERIMENTS.md.
#
#   --smoke      reduced CI-sized sweeps (seconds; still covers E1-E10)
#   --only=...   comma-separated subset of E1..E10 (case-insensitive)
#   --print      also render per-experiment tables to stdout
#   --out=PATH   artifact path (default: BENCH_results.json)
#   --trace=PATH additionally write a demo JSONL event trace
#   --wallclock  additionally run the google-benchmark binaries for the
#                selected experiments (wall-clock timing; NOT written to
#                the JSON artifact, which must stay deterministic)
#
# All flags other than --wallclock are forwarded to bench_report.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
BUILD_DIR="${BUILD_DIR:-build}"

WALLCLOCK=0
ONLY=""
FORWARD=()
for arg in "$@"; do
  case "${arg}" in
    --wallclock) WALLCLOCK=1 ;;
    # Normalize the subset to upper case so `--only=e8` works too.
    --only=*) ONLY="$(echo "${arg#--only=}" | tr '[:lower:]' '[:upper:]')"
              FORWARD+=("--only=${ONLY}") ;;
    *) FORWARD+=("${arg}") ;;
  esac
done

if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_report

"${BUILD_DIR}/bench/bench_report" "${FORWARD[@]+"${FORWARD[@]}"}"

if [ "${WALLCLOCK}" -eq 1 ]; then
  declare -A BINARIES=(
    [E1]=bench_e1_query_latency
    [E2]=bench_e2_update_latency
    [E3]=bench_e3_message_complexity
    [E4]=bench_e4_np_checker
    [E5]=bench_e5_constrained_checker
    [E6]=bench_e6_baselines
    [E7]=bench_e7_asynchrony
    [E8]=bench_e8_faults
    [E9]=bench_e9_batching
    [E10]=bench_e10_exec
  )
  SELECTED=(E1 E2 E3 E4 E5 E6 E7 E8 E9 E10)
  if [ -n "${ONLY}" ]; then
    IFS=',' read -r -a SELECTED <<<"${ONLY}"
  fi
  for exp in "${SELECTED[@]}"; do
    bin="${BINARIES[${exp}]:-}"
    if [ -z "${bin}" ]; then
      echo "unknown experiment '${exp}' (expected E1..E10)" >&2
      exit 2
    fi
    cmake --build "${BUILD_DIR}" -j "${JOBS}" --target "${bin}"
    echo
    echo "== wall clock: ${exp} (${bin}) =="
    "${BUILD_DIR}/bench/${bin}"
  done
fi
