#!/usr/bin/env bash
# Static + dynamic analysis driver for the mocc tree.
#
# Usage: tools/run_analysis.sh [stage ...]
#   stages: lint asan tsan werror tidy  (default: all of them, in that
#   order; "--lint" is accepted as an alias for "lint")
#
# Each stage configures its own build directory (build-<preset>) from
# CMakePresets.json, builds everything with -Werror, and runs the full
# ctest suite. Stages that need tools the host lacks (clang, clang-tidy)
# are skipped with a notice rather than failing, so the script is safe to
# run on gcc-only machines; CI runs every stage on a clang toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
FAILED=()
SKIPPED=()

note() { printf '\n\033[1;34m== %s ==\033[0m\n' "$*"; }

run_preset() {
  local preset="$1"
  note "configure+build+test: preset '${preset}'"
  cmake --preset "${preset}" &&
    cmake --build --preset "${preset}" -j "${JOBS}" &&
    ctest --preset "${preset}" --output-on-failure -j "${JOBS}"
}

stage_asan() {
  # ASan finds heap misuse; UBSan (with -fno-sanitize-recover=all) turns
  # any undefined behavior into a hard failure.
  ASAN_OPTIONS="${ASAN_OPTIONS:-strict_string_checks=1:detect_stack_use_after_return=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    run_preset asan-ubsan
}

stage_tsan() {
  # TSan exercises the annotated concurrency boundary (recorder, logger,
  # Simulator::post, ParallelRunner) via tests/parallel_test.cpp.
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}" \
    run_preset tsan
}

stage_werror() {
  # Plain warning-clean build. Under clang this also runs the
  # -Wthread-safety lock-discipline analysis over the MOCC_* annotations.
  note "configure+build+test: -Werror (plus -Wthread-safety under clang)"
  cmake -B build-werror -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMOCC_WERROR=ON &&
    cmake --build build-werror -j "${JOBS}" &&
    ctest --test-dir build-werror --output-on-failure -j "${JOBS}"
}

stage_lint() {
  # Project lint (tools/mocc_lint, docs/static-analysis.md): determinism,
  # wire-kind, guarded-by, sched-hook, msg-flow, atomics, trace-registry,
  # and compdb-freshness invariants over src/ and bench/. The portable
  # frontend builds with any toolchain; the clang AST frontend is
  # additionally built when a Clang dev install exists.
  note "mocc-lint (portable frontend + self-tests)"
  cmake -B build-lint -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMOCC_BUILD_LINT=ON &&
    cmake --build build-lint -j "${JOBS}" --target mocc-lint lint_test &&
    ctest --test-dir build-lint --output-on-failure -j "${JOBS}" -R '^(SourceFile|Suppression|Determinism|GuardedBy|SchedHook|WireKind|MsgFlow|Atomics|Compdb|TraceRegistry|Driver|RepoLint)' &&
    ./build-lint/tools/mocc_lint/mocc-lint --root . --compdb build-lint/compile_commands.json
}

stage_tidy() {
  if ! command -v clang-tidy >/dev/null || ! command -v clang++ >/dev/null; then
    echo "clang-tidy/clang++ not found; skipping tidy stage"
    SKIPPED+=(tidy)
    return 0
  fi
  note "clang-tidy (preset 'tidy', checks from .clang-tidy)"
  cmake --preset tidy &&
    cmake --build --preset tidy -j "${JOBS}"
}

STAGES=("${@/#--/}")  # accept --lint etc. as flag-style spellings
if [ "${#STAGES[@]}" -eq 0 ]; then
  STAGES=(lint asan tsan werror tidy)
fi

for stage in "${STAGES[@]}"; do
  case "${stage}" in
    lint|asan|tsan|werror|tidy) ;;
    *) echo "unknown stage '${stage}' (expected lint|asan|tsan|werror|tidy)"; exit 2 ;;
  esac
  if "stage_${stage}"; then
    echo "stage ${stage}: OK"
  else
    echo "stage ${stage}: FAILED"
    FAILED+=("${stage}")
  fi
done

note "summary"
echo "ran:     ${STAGES[*]}"
[ "${#SKIPPED[@]}" -gt 0 ] && echo "skipped: ${SKIPPED[*]}"
if [ "${#FAILED[@]}" -gt 0 ]; then
  echo "FAILED:  ${FAILED[*]}"
  exit 1
fi
echo "all stages clean"
