// mocc-trace-registry: TraceEvent names form a closed, documented
// registry.
//
// Three places must agree:
//   1. the TraceEventType enumeration (src/obs/trace.hpp);
//   2. the obs::to_string switch (src/obs/trace.cpp) that maps each
//      enumerator to its wire name;
//   3. the "## Trace events" table in docs/observability.md.
// Tooling downstream of the trace (BENCH artifact diffing, the message
// tracer's JSON output) keys on the names, so a renamed or undocumented
// event silently forks the artifact schema. The check also flags name
// literals that appear outside the to_string registry — events must be
// emitted via the enum, never by spelling the string again.
#include "lint.hpp"

#include <map>
#include <set>

namespace mocc::lint {

namespace {

/// 1-based line of `offset` in free-standing text (the docs file is not
/// a SourceFile — markdown gets no C++ masking).
std::size_t text_line_of(const std::string& text, std::size_t offset) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

struct Enumerator {
  std::string name;  ///< kMessageSend
  std::size_t line = 0;
};

/// Parses the enumerators of `enum class TraceEventType { ... }`.
std::vector<Enumerator> parse_enum(const SourceFile& header) {
  std::vector<Enumerator> enumerators;
  const std::vector<Token> tokens = tokenize(header);
  for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
    if (tokens[i].text != "enum" || tokens[i + 1].text != "class" ||
        tokens[i + 2].text != "TraceEventType") {
      continue;
    }
    std::size_t j = i + 3;
    while (j < tokens.size() && tokens[j].text != "{") ++j;
    bool expecting_name = true;
    for (++j; j < tokens.size() && tokens[j].text != "}"; ++j) {
      if (tokens[j].text == ",") {
        expecting_name = true;
        continue;
      }
      if (expecting_name && tokens[j].kind == Token::Kind::kIdent) {
        enumerators.push_back({std::string(tokens[j].text),
                               header.line_of(tokens[j].offset)});
        expecting_name = false;  // skip any `= value` tail until ','
      }
    }
    break;
  }
  return enumerators;
}

struct Case {
  std::string enumerator;
  std::string name;  ///< the returned string literal
  std::size_t line = 0;
};

/// Parses `case TraceEventType::kX: return "name";` arms out of the
/// to_string switch.
std::vector<Case> parse_switch(const SourceFile& source) {
  std::vector<Case> cases;
  const std::vector<Token> tokens = tokenize(source);
  const auto& literals = source.string_literals();
  for (std::size_t i = 0; i + 5 < tokens.size(); ++i) {
    if (tokens[i].text != "case" || tokens[i + 1].text != "TraceEventType" ||
        tokens[i + 2].text != "::") {
      continue;
    }
    if (tokens[i + 3].kind != Token::Kind::kIdent) continue;
    if (tokens[i + 4].text != ":" || tokens[i + 5].text != "return") continue;
    // The returned literal is masked; find it between `return` and `;`.
    std::size_t semi = i + 6;
    while (semi < tokens.size() && tokens[semi].text != ";") ++semi;
    if (semi >= tokens.size()) continue;
    const SourceFile::Literal* name = nullptr;
    for (const auto& literal : literals) {
      if (literal.offset > tokens[i + 5].offset &&
          literal.offset < tokens[semi].offset) {
        name = &literal;
        break;
      }
    }
    if (name == nullptr) continue;
    cases.push_back({std::string(tokens[i + 3].text), name->value,
                     source.line_of(tokens[i].offset)});
  }
  return cases;
}

struct DocRow {
  std::string name;
  std::size_t line = 0;
};

/// Extracts `| \`name\` | ... |` rows from the "## Trace events" table.
std::vector<DocRow> parse_docs(const std::string& docs) {
  std::vector<DocRow> rows;
  const std::size_t section = docs.find("## Trace events");
  if (section == std::string::npos) return rows;
  std::size_t end = docs.find("\n## ", section + 1);
  if (end == std::string::npos) end = docs.size();
  std::size_t i = section;
  while (i < end) {
    std::size_t line_end = docs.find('\n', i);
    if (line_end == std::string::npos || line_end > end) line_end = end;
    // A data row starts "| `name`"; the header row has no backticks.
    std::size_t p = i;
    while (p < line_end && (docs[p] == ' ' || docs[p] == '\t')) ++p;
    if (p < line_end && docs[p] == '|') {
      ++p;
      while (p < line_end && docs[p] == ' ') ++p;
      if (p < line_end && docs[p] == '`') {
        const std::size_t name_end = docs.find('`', p + 1);
        if (name_end != std::string::npos && name_end < line_end) {
          rows.push_back({docs.substr(p + 1, name_end - p - 1),
                          text_line_of(docs, i)});
        }
      }
    }
    i = line_end + 1;
  }
  return rows;
}

}  // namespace

void check_trace_registry(const Config& config,
                          const std::vector<SourceFile>& files,
                          const std::string& docs_text,
                          std::vector<Diagnostic>& out) {
  const SourceFile* header = nullptr;
  const SourceFile* source = nullptr;
  for (const auto& file : files) {
    if (file.path() == config.trace_header_path) header = &file;
    if (file.path() == config.trace_source_path) source = &file;
  }
  if (header == nullptr || source == nullptr) {
    // A tree without the trace subsystem has nothing to keep in sync
    // (fixture trees in the self-tests routinely omit it).
    return;
  }
  const std::vector<Enumerator> enumerators = parse_enum(*header);
  const std::vector<Case> cases = parse_switch(*source);
  if (enumerators.empty()) {
    out.push_back({"trace-registry", header->path(), 1,
                   "TraceEventType enumeration not found"});
    return;
  }
  if (cases.empty()) {
    out.push_back({"trace-registry", source->path(), 1,
                   "to_string switch over TraceEventType not found"});
    return;
  }

  std::map<std::string, const Case*> by_enumerator;
  std::map<std::string, const Case*> by_name;
  for (const auto& c : cases) {
    if (const auto [it, inserted] = by_enumerator.try_emplace(c.enumerator, &c);
        !inserted) {
      out.push_back({"trace-registry", source->path(), c.line,
                     "duplicate to_string case for '" + c.enumerator + "'"});
    }
    if (const auto [it, inserted] = by_name.try_emplace(c.name, &c);
        !inserted) {
      out.push_back({"trace-registry", source->path(), c.line,
                     "trace name '" + c.name + "' is returned for both '" +
                         it->second->enumerator + "' and '" + c.enumerator +
                         "'"});
    }
  }

  std::set<std::string> enum_names;
  for (const auto& e : enumerators) {
    enum_names.insert(e.name);
    if (by_enumerator.count(e.name) == 0 &&
        !header->allowed("trace-registry", e.line)) {
      out.push_back({"trace-registry", header->path(), e.line,
                     "enumerator '" + e.name +
                         "' has no to_string case in " + source->path()});
    }
  }
  for (const auto& c : cases) {
    if (enum_names.count(c.enumerator) == 0) {
      out.push_back({"trace-registry", source->path(), c.line,
                     "to_string case for '" + c.enumerator +
                         "' which is not a TraceEventType enumerator"});
    }
  }

  // Docs table must list exactly the registered names.
  if (docs_text.empty()) {
    out.push_back({"trace-registry", config.trace_docs_path, 1,
                   "trace docs file is missing or empty (the \"## Trace "
                   "events\" table documents the registry)"});
    return;
  }
  const std::vector<DocRow> rows = parse_docs(docs_text);
  if (rows.empty()) {
    out.push_back({"trace-registry", config.trace_docs_path, 1,
                   "no \"## Trace events\" table rows found"});
    return;
  }
  std::set<std::string> documented;
  for (const auto& row : rows) {
    documented.insert(row.name);
    if (by_name.count(row.name) == 0) {
      out.push_back({"trace-registry", config.trace_docs_path, row.line,
                     "documented trace event '" + row.name +
                         "' is not produced by " + source->path()});
    }
  }
  for (const auto& c : cases) {
    if (documented.count(c.name) == 0) {
      out.push_back({"trace-registry", source->path(), c.line,
                     "trace event '" + c.name + "' is missing from the " +
                         config.trace_docs_path + " table"});
    }
  }

  // Registered names must not be re-spelled as literals elsewhere in the
  // production tree — emit through the enum, or the registry stops being
  // the single source of the artifact schema.
  for (const auto& file : files) {
    if (&file == source) continue;
    if (!config.in_production_tree(file.path())) continue;
    for (const auto& literal : file.string_literals()) {
      if (by_name.count(literal.value) == 0) continue;
      const std::size_t line = file.line_of(literal.offset);
      if (file.allowed("trace-registry", line)) continue;
      out.push_back({"trace-registry", file.path(), line,
                     "registered trace event name '" + literal.value +
                         "' spelled as a literal outside the to_string "
                         "registry (emit via TraceEventType instead)"});
    }
  }
}

}  // namespace mocc::lint
