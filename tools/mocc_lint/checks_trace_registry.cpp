// mocc-trace-registry: TraceEvent and Span names form closed, documented
// registries.
//
// Three places must agree, per registry:
//   1. the enumeration (TraceEventType / SpanType, src/obs/trace.hpp);
//   2. the obs::to_string switch (src/obs/trace.cpp) that maps each
//      enumerator to its wire name;
//   3. the matching table in docs/observability.md ("## Trace events" /
//      "## Span types").
// Tooling downstream of the trace (BENCH artifact diffing, the message
// tracer's JSON output, trace_query) keys on the names, so a renamed or
// undocumented event silently forks the artifact schema. The check also
// flags name literals that appear outside the to_string registry —
// events and spans must be emitted via the enum, never by spelling the
// string again.
//
// The SpanType pass is optional: a tree (or test fixture) without the
// span registry has nothing to keep in sync, so an absent enum no-ops.
#include "lint.hpp"

#include <map>
#include <set>

namespace mocc::lint {

namespace {

/// 1-based line of `offset` in free-standing text (the docs file is not
/// a SourceFile — markdown gets no C++ masking).
std::size_t text_line_of(const std::string& text, std::size_t offset) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

/// One enum ↔ to_string ↔ docs-table triple to keep in sync.
struct RegistryShape {
  std::string_view enum_name;  ///< "TraceEventType" / "SpanType"
  std::string_view section;    ///< docs heading ("## Trace events", ...)
  std::string_view noun;       ///< diagnostic wording ("trace event", ...)
};

struct Enumerator {
  std::string name;  ///< kMessageSend
  std::size_t line = 0;
};

/// Parses the enumerators of `enum class <enum_name> { ... }`.
std::vector<Enumerator> parse_enum(const SourceFile& header,
                                   std::string_view enum_name) {
  std::vector<Enumerator> enumerators;
  const std::vector<Token> tokens = tokenize(header);
  for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
    if (tokens[i].text != "enum" || tokens[i + 1].text != "class" ||
        tokens[i + 2].text != enum_name) {
      continue;
    }
    std::size_t j = i + 3;
    while (j < tokens.size() && tokens[j].text != "{") ++j;
    bool expecting_name = true;
    for (++j; j < tokens.size() && tokens[j].text != "}"; ++j) {
      if (tokens[j].text == ",") {
        expecting_name = true;
        continue;
      }
      if (expecting_name && tokens[j].kind == Token::Kind::kIdent) {
        enumerators.push_back({std::string(tokens[j].text),
                               header.line_of(tokens[j].offset)});
        expecting_name = false;  // skip any `= value` tail until ','
      }
    }
    break;
  }
  return enumerators;
}

struct Case {
  std::string enumerator;
  std::string name;  ///< the returned string literal
  std::size_t line = 0;
};

/// Parses `case <enum_name>::kX: return "name";` arms out of the
/// to_string switch.
std::vector<Case> parse_switch(const SourceFile& source,
                               std::string_view enum_name) {
  std::vector<Case> cases;
  const std::vector<Token> tokens = tokenize(source);
  const auto& literals = source.string_literals();
  for (std::size_t i = 0; i + 5 < tokens.size(); ++i) {
    if (tokens[i].text != "case" || tokens[i + 1].text != enum_name ||
        tokens[i + 2].text != "::") {
      continue;
    }
    if (tokens[i + 3].kind != Token::Kind::kIdent) continue;
    if (tokens[i + 4].text != ":" || tokens[i + 5].text != "return") continue;
    // The returned literal is masked; find it between `return` and `;`.
    std::size_t semi = i + 6;
    while (semi < tokens.size() && tokens[semi].text != ";") ++semi;
    if (semi >= tokens.size()) continue;
    const SourceFile::Literal* name = nullptr;
    for (const auto& literal : literals) {
      if (literal.offset > tokens[i + 5].offset &&
          literal.offset < tokens[semi].offset) {
        name = &literal;
        break;
      }
    }
    if (name == nullptr) continue;
    cases.push_back({std::string(tokens[i + 3].text), name->value,
                     source.line_of(tokens[i].offset)});
  }
  return cases;
}

struct DocRow {
  std::string name;
  std::size_t line = 0;
};

/// Extracts `| \`name\` | ... |` rows from the `section` table.
std::vector<DocRow> parse_docs(const std::string& docs,
                               std::string_view section) {
  std::vector<DocRow> rows;
  const std::size_t start = docs.find(section);
  if (start == std::string::npos) return rows;
  std::size_t end = docs.find("\n## ", start + 1);
  if (end == std::string::npos) end = docs.size();
  std::size_t i = start;
  while (i < end) {
    std::size_t line_end = docs.find('\n', i);
    if (line_end == std::string::npos || line_end > end) line_end = end;
    // A data row starts "| `name`"; the header row has no backticks.
    std::size_t p = i;
    while (p < line_end && (docs[p] == ' ' || docs[p] == '\t')) ++p;
    if (p < line_end && docs[p] == '|') {
      ++p;
      while (p < line_end && docs[p] == ' ') ++p;
      if (p < line_end && docs[p] == '`') {
        const std::size_t name_end = docs.find('`', p + 1);
        if (name_end != std::string::npos && name_end < line_end) {
          rows.push_back({docs.substr(p + 1, name_end - p - 1),
                          text_line_of(docs, i)});
        }
      }
    }
    i = line_end + 1;
  }
  return rows;
}

/// Runs the three-way sync for one registry; appends each registered
/// wire name into `registered` (name -> shape, for the cross-file
/// stray-literal scan). `required` demands the enum exist (the event
/// registry); the span registry no-ops when absent.
void check_one_registry(const Config& config, const RegistryShape& shape,
                        bool required, const SourceFile& header,
                        const SourceFile& source, const std::string& docs_text,
                        std::map<std::string, const RegistryShape*>& registered,
                        std::vector<Diagnostic>& out) {
  const std::vector<Enumerator> enumerators = parse_enum(header, shape.enum_name);
  const std::vector<Case> cases = parse_switch(source, shape.enum_name);
  if (enumerators.empty()) {
    if (required) {
      out.push_back({"trace-registry", header.path(), 1,
                     std::string(shape.enum_name) + " enumeration not found"});
    }
    return;
  }
  if (cases.empty()) {
    out.push_back({"trace-registry", source.path(), 1,
                   "to_string switch over " + std::string(shape.enum_name) +
                       " not found"});
    return;
  }

  std::map<std::string, const Case*> by_enumerator;
  std::map<std::string, const Case*> by_name;
  for (const auto& c : cases) {
    if (const auto [it, inserted] = by_enumerator.try_emplace(c.enumerator, &c);
        !inserted) {
      out.push_back({"trace-registry", source.path(), c.line,
                     "duplicate to_string case for '" + c.enumerator + "'"});
    }
    if (const auto [it, inserted] = by_name.try_emplace(c.name, &c);
        !inserted) {
      out.push_back({"trace-registry", source.path(), c.line,
                     std::string(shape.noun) + " name '" + c.name +
                         "' is returned for both '" + it->second->enumerator +
                         "' and '" + c.enumerator + "'"});
    }
  }
  for (const auto& [name, c] : by_name) registered.try_emplace(name, &shape);

  std::set<std::string> enum_names;
  for (const auto& e : enumerators) {
    enum_names.insert(e.name);
    if (by_enumerator.count(e.name) == 0 &&
        !header.allowed("trace-registry", e.line)) {
      out.push_back({"trace-registry", header.path(), e.line,
                     "enumerator '" + e.name + "' has no to_string case in " +
                         source.path()});
    }
  }
  for (const auto& c : cases) {
    if (enum_names.count(c.enumerator) == 0) {
      out.push_back({"trace-registry", source.path(), c.line,
                     "to_string case for '" + c.enumerator + "' which is not a " +
                         std::string(shape.enum_name) + " enumerator"});
    }
  }

  // Docs table must list exactly the registered names.
  if (docs_text.empty()) {
    out.push_back({"trace-registry", config.trace_docs_path, 1,
                   "trace docs file is missing or empty (the \"" +
                       std::string(shape.section) +
                       "\" table documents the registry)"});
    return;
  }
  const std::vector<DocRow> rows = parse_docs(docs_text, shape.section);
  if (rows.empty()) {
    out.push_back({"trace-registry", config.trace_docs_path, 1,
                   "no \"" + std::string(shape.section) +
                       "\" table rows found"});
    return;
  }
  std::set<std::string> documented;
  for (const auto& row : rows) {
    documented.insert(row.name);
    if (by_name.count(row.name) == 0) {
      out.push_back({"trace-registry", config.trace_docs_path, row.line,
                     "documented " + std::string(shape.noun) + " '" + row.name +
                         "' is not produced by " + source.path()});
    }
  }
  for (const auto& c : cases) {
    if (documented.count(c.name) == 0) {
      out.push_back({"trace-registry", source.path(), c.line,
                     std::string(shape.noun) + " '" + c.name +
                         "' is missing from the " + config.trace_docs_path +
                         " table"});
    }
  }
}

}  // namespace

void check_trace_registry(const Config& config,
                          const std::vector<SourceFile>& files,
                          const std::string& docs_text,
                          std::vector<Diagnostic>& out) {
  const SourceFile* header = nullptr;
  const SourceFile* source = nullptr;
  for (const auto& file : files) {
    if (file.path() == config.trace_header_path) header = &file;
    if (file.path() == config.trace_source_path) source = &file;
  }
  if (header == nullptr || source == nullptr) {
    // A tree without the trace subsystem has nothing to keep in sync
    // (fixture trees in the self-tests routinely omit it).
    return;
  }

  static constexpr RegistryShape kEventRegistry{"TraceEventType",
                                                "## Trace events",
                                                "trace event"};
  static constexpr RegistryShape kSpanRegistry{"SpanType", "## Span types",
                                               "span type"};

  std::map<std::string, const RegistryShape*> registered;
  check_one_registry(config, kEventRegistry, /*required=*/true, *header,
                     *source, docs_text, registered, out);
  check_one_registry(config, kSpanRegistry, /*required=*/false, *header,
                     *source, docs_text, registered, out);

  // Registered names must not be re-spelled as literals elsewhere in the
  // production tree — emit through the enum, or the registry stops being
  // the single source of the artifact schema.
  for (const auto& file : files) {
    if (&file == source) continue;
    if (!config.in_production_tree(file.path())) continue;
    for (const auto& literal : file.string_literals()) {
      const auto it = registered.find(literal.value);
      if (it == registered.end()) continue;
      const std::size_t line = file.line_of(literal.offset);
      if (file.allowed("trace-registry", line)) continue;
      out.push_back({"trace-registry", file.path(), line,
                     "registered " + std::string(it->second->noun) + " name '" +
                         literal.value +
                         "' spelled as a literal outside the to_string "
                         "registry (emit via " +
                         std::string(it->second->enum_name) + " instead)"});
    }
  }
}

}  // namespace mocc::lint
