// mocc-determinism: no wall clock, no ambient randomness, no unordered
// containers inside the deterministic subtree.
//
// The simulator's contract — byte-identical reruns for a fixed seed —
// dies quietly the first time protocol or bench code reads the host
// clock, draws from an unseeded RNG, or serializes the iteration order
// of a hash container. util::Rng (seeded, owned per run) is the only
// sanctioned randomness; std::map / std::set / sorting at the boundary
// are the sanctioned orderings.
//
// The token engine is deliberately conservative: ANY mention of an
// unordered container in the subtree needs an inline allow with a
// justification (the AST frontend narrows this to actual iteration).
// Membership-only memo sets are fine — say so in the allow.
#include "lint.hpp"

#include <array>

namespace mocc::lint {

namespace {

/// Identifiers that are banned wherever they appear in the subtree.
constexpr std::array<std::string_view, 9> kBannedAnywhere = {
    "random_device",    "system_clock", "steady_clock",
    "high_resolution_clock", "gettimeofday", "clock_gettime",
    "localtime",        "gmtime",       "timespec_get"};

/// Identifiers banned as free / std-qualified calls (member accesses
/// like `event.time` or `obj->clock` stay legal).
constexpr std::array<std::string_view, 4> kBannedCalls = {"rand", "srand",
                                                          "time", "clock"};

constexpr std::array<std::string_view, 4> kUnordered = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

template <std::size_t N>
bool contains(const std::array<std::string_view, N>& set,
              std::string_view name) {
  for (const auto entry : set) {
    if (entry == name) return true;
  }
  return false;
}

}  // namespace

void check_determinism(const Config& config, const SourceFile& file,
                       std::vector<Diagnostic>& out) {
  if (!config.in_deterministic_subtree(file.path())) return;
  const std::vector<Token> tokens = tokenize(file);
  auto emit = [&](std::size_t offset, std::string message) {
    const std::size_t line = file.line_of(offset);
    if (file.allowed("determinism", line)) return;
    out.push_back({"determinism", file.path(), line, std::move(message)});
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdent) continue;

    if (contains(kBannedAnywhere, tok.text)) {
      emit(tok.offset,
           "'" + std::string(tok.text) +
               "' in the deterministic subtree (wall clock / ambient "
               "randomness breaks byte-identical reruns; use the run's "
               "seeded util::Rng and virtual time)");
      continue;
    }

    if (contains(kUnordered, tok.text)) {
      emit(tok.offset,
           "'" + std::string(tok.text) +
               "' in the deterministic subtree (iteration order is "
               "implementation-defined; use std::map/std::set, sort at "
               "the boundary, or justify with an inline allow)");
      continue;
    }

    if (contains(kBannedCalls, tok.text)) {
      // Only direct calls: `time(`, `std::time(` — not `.time`,
      // `->clock()`, `x::time` for a non-std x, or a plain field named
      // `time`.
      const bool called =
          i + 1 < tokens.size() && tokens[i + 1].text == "(";
      if (!called) continue;
      if (i > 0) {
        const std::string_view prev = tokens[i - 1].text;
        if (prev == "." || prev == "->") continue;
        if (prev == "::") {
          const bool std_qualified = i >= 2 && tokens[i - 2].text == "std";
          if (!std_qualified) continue;
        }
      }
      emit(tok.offset,
           "call of '" + std::string(tok.text) +
               "' in the deterministic subtree (wall clock / ambient "
               "randomness breaks byte-identical reruns)");
    }
  }
}

}  // namespace mocc::lint
