// mocc-lint CLI.
//
//   mocc-lint [--root DIR] [--compdb FILE] [--check NAME]...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage error.
#include <cstdio>
#include <cstring>
#include <string>

#include "lint.hpp"

namespace {

void usage(std::FILE* to) {
  std::fputs(
      "usage: mocc-lint [options]\n"
      "\n"
      "Project lint for the mocc tree: scans src/ and bench/ (TUs from\n"
      "build/compile_commands.json when present, plus every header) and\n"
      "enforces the determinism, wire-kind, guarded-by, sched-hook,\n"
      "msg-flow, atomics, trace-registry, and compdb-freshness\n"
      "invariants. See docs/static-analysis.md.\n"
      "\n"
      "  --root DIR     repo root to scan (default: .)\n"
      "  --compdb FILE  compilation database (default:\n"
      "                 <root>/build/compile_commands.json)\n"
      "  --check NAME   run only NAME (repeatable); names:\n"
      "                 determinism wire-kind guarded-by sched-hook\n"
      "                 msg-flow atomics trace-registry compdb\n"
      "                 suppression\n"
      "  --list-checks  print check names and exit\n"
      "  -h, --help     this text\n",
      to);
}

}  // namespace

int main(int argc, char** argv) {
  mocc::lint::RunOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    }
    if (arg == "--list-checks") {
      for (const auto name : mocc::lint::kCheckNames) {
        std::printf("%.*s\n", static_cast<int>(name.size()), name.data());
      }
      return 0;
    }
    if (arg == "--root") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      options.repo_root = v;
      continue;
    }
    if (arg == "--compdb") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      options.compdb_path = v;
      continue;
    }
    if (arg == "--check") {
      const char* v = value();
      if (v == nullptr || !mocc::lint::is_known_check(v)) {
        std::fprintf(stderr, "mocc-lint: unknown check '%s'\n",
                     v == nullptr ? "" : v);
        return 2;
      }
      options.checks.insert(v);
      continue;
    }
    std::fprintf(stderr, "mocc-lint: unknown option '%s'\n", argv[i]);
    usage(stderr);
    return 2;
  }

  const auto diagnostics = mocc::lint::run_lint(options);
  for (const auto& diagnostic : diagnostics) {
    std::printf("%s\n", mocc::lint::to_string(diagnostic).c_str());
  }
  if (diagnostics.empty()) {
    std::fprintf(stderr, "mocc-lint: clean\n");
    return 0;
  }
  std::fprintf(stderr, "mocc-lint: %zu diagnostic(s)\n", diagnostics.size());
  return 1;
}
