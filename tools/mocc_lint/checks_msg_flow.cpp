// mocc-msg-flow: cross-TU closure of the message graph.
//
// The protocols are message-kind state machines: a kind constant is only
// meaningful if somebody emits it AND somebody in the owning component
// routes it. This check builds a repo-wide view of every *concrete* kind
// constant — one defined directly through its component's
// <component>_kind(offset) registry helper — and classifies each use:
//
//   handler use   — a `case kX:` label, or any statement that compares
//                   the `kind` field against the constant
//                   (`message.kind == kX`, `kind != kX` early-out
//                   chains);
//   emission use  — every other appearance: send()/net_send() arguments,
//                   helper-call forwarding (on_query(ctx, m, kResp)),
//                   batch assembly, trace-event payloads. The token
//                   engine deliberately over-approximates here — a kind
//                   that reaches ANY expression is considered live,
//                   which keeps runtime-forwarded kinds
//                   (pending.wire_kind, resp_kind parameters) closed.
//
// Enforced, per kind whose component has a pinned directory:
//   1. emitted but no handler use inside the component's directory
//      (unhandled kind — nothing can receive it);
//   2. handler use but no emission anywhere (dead handler);
//   3. no uses at all (orphan kind);
//   4. request/response rows of the registry's kKindPairs table name
//      known constants of the same component, and a pair with a live
//      request keeps its response live too (unpaired request/response);
//   5. every timer id constant passed to set_timer() has an on_timer
//      route: a statement in the same component directory testing it
//      against the `timer_id` parameter (missing timer route).
//
// Timer ids are collected from `constexpr std::uint64_t kName = ...;`
// declarations in component directories (the convention both
// kBatchTimerId and the kLinkTimerTag/kLinkFlushTimerBit masks follow);
// set_timer calls whose id argument is a plain runtime variable carry no
// recognizable constant and pass, mirroring the wire-kind send-site
// policy.
//
// A registry without a kKindPairs table is fine (rule 4 is vacuous) —
// the table is opt-in, the other rules are not. A missing or malformed
// registry is wire-kind's finding, not repeated here.
#include "lint.hpp"

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace mocc::lint {

namespace {

constexpr std::string_view kCheck = "msg-flow";

bool is_boundary(std::string_view text) {
  return text == ";" || text == "{" || text == "}";
}

/// True when the statement enclosing tokens[i] also contains the ident
/// `kind` and an equality/inequality comparison — the handler idiom for
/// `==`-chained on_message bodies. `case kX:` labels are matched
/// separately (the label is its own statement).
bool statement_compares(const std::vector<Token>& tokens, std::size_t i,
                        std::string_view field) {
  std::size_t begin = i;
  while (begin > 0 && !is_boundary(tokens[begin - 1].text)) --begin;
  std::size_t end = i;
  while (end + 1 < tokens.size() && !is_boundary(tokens[end + 1].text)) ++end;
  bool has_field = false;
  bool has_compare = false;
  for (std::size_t j = begin; j <= end; ++j) {
    if (tokens[j].kind == Token::Kind::kIdent && tokens[j].text == field) {
      has_field = true;
    }
    if (tokens[j].kind == Token::Kind::kPunct &&
        (tokens[j].text == "=" || tokens[j].text == "!") &&
        j + 1 < tokens.size() && tokens[j + 1].text == "=") {
      has_compare = true;
    }
  }
  return has_field && has_compare;
}

struct KindInfo {
  std::string name;
  std::string file;  ///< declaring file
  std::size_t line = 0;
  std::string component;
  std::string dir;  ///< the component's pinned directory
  std::size_t handler_uses = 0;  ///< inside dir
  std::size_t emit_uses = 0;     ///< anywhere scanned
  std::string first_handler_file;
  std::size_t first_handler_line = 0;
};

struct TimerInfo {
  std::string name;
  std::string dir;  ///< component directory the declaration lives in
  bool routed = false;
};

/// Collects `constexpr std::uintNN_t kName = ...;` declarations whose
/// initializer directly calls one of the registry helpers (kinds,
/// uint32_t) or that are 64-bit timer-id constants in a component
/// directory. Mirrors wire-kind's collector but only needs the direct
/// helper-call form — every concrete kind in the tree is declared that
/// way, and derived aliases stay wire-kind's business.
void collect_declarations(const Config& config, const SourceFile& file,
                          const std::set<std::string>& helper_names,
                          const std::map<std::string, std::string>& helper_dirs,
                          std::map<std::string, KindInfo>& kinds,
                          std::map<std::string, TimerInfo>& timers) {
  // The registry's own constants define the ranges; they are not part of
  // the message graph.
  if (file.path() == config.registry_path) return;
  std::string file_dir;  ///< the component dir this file sits in, if any
  for (const auto& [component, dir] : config.component_paths) {
    if (file.path().rfind(dir, 0) == 0) file_dir = dir;
  }
  const std::vector<Token> tokens = tokenize(file);
  for (std::size_t i = 0; i + 6 < tokens.size(); ++i) {
    if (tokens[i].text != "constexpr") continue;
    std::size_t j = i + 1;
    if (tokens[j].text == "std" && tokens[j + 1].text == "::") j += 2;
    const bool is_kind_width = tokens[j].text == "uint32_t";
    const bool is_timer_width = tokens[j].text == "uint64_t";
    if (!is_kind_width && !is_timer_width) continue;
    ++j;
    if (j >= tokens.size() || tokens[j].kind != Token::Kind::kIdent) continue;
    const std::size_t name_index = j;
    ++j;
    if (j >= tokens.size() || tokens[j].text != "=") continue;
    std::size_t k = j + 1;
    while (k < tokens.size() && tokens[k].text != ";") ++k;
    if (k >= tokens.size()) continue;
    const std::string name(tokens[name_index].text);
    if (is_timer_width) {
      if (!file_dir.empty()) {
        timers.try_emplace(name, TimerInfo{name, file_dir, false});
      }
      continue;
    }
    // Kind constant: the initializer must call a registry helper.
    for (std::size_t h = j + 1; h + 1 < k; ++h) {
      if (tokens[h].kind != Token::Kind::kIdent ||
          tokens[h + 1].text != "(" ||
          helper_names.count(std::string(tokens[h].text)) == 0) {
        continue;
      }
      const std::string component(
          tokens[h].text.substr(0, tokens[h].text.size() - 5));  // strip _kind
      const auto dir = helper_dirs.find(component);
      if (dir == helper_dirs.end()) break;  // no pinned directory: skip
      KindInfo info;
      info.name = name;
      info.file = file.path();
      info.line = file.line_of(tokens[name_index].offset);
      info.component = component;
      info.dir = dir->second;
      kinds.try_emplace(name, std::move(info));
      break;
    }
  }
}

/// Splits the argument list after the '(' at `open` (same contract as
/// wire-kind's helper; duplicated locally to keep the checks' internals
/// independent).
std::size_t split_call_args(
    const std::vector<Token>& tokens, std::size_t open,
    std::vector<std::pair<std::size_t, std::size_t>>& args) {
  std::size_t depth = 1;
  std::size_t start = open + 1;
  std::size_t i = open + 1;
  for (; i < tokens.size(); ++i) {
    const std::string_view text = tokens[i].text;
    if (text == "(" || text == "[" || text == "{") ++depth;
    if (text == ")" || text == "]" || text == "}") {
      if (--depth == 0) break;
    }
    if (text == "," && depth == 1) {
      if (i > start) args.push_back({start, i - 1});
      start = i + 1;
    }
  }
  if (i > start && i < tokens.size()) args.push_back({start, i - 1});
  return i;
}

/// Parses the registry's kKindPairs rows: {"request", "response"}
/// literals recovered from the masked table by offset. Absent table =
/// no rows, by design.
struct PairRow {
  std::string request;
  std::string response;
  std::size_t line = 0;
};

std::vector<PairRow> parse_kind_pairs(const SourceFile& registry) {
  std::vector<PairRow> rows;
  const std::vector<Token> tokens = tokenize(registry);
  std::size_t table = tokens.size();
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind == Token::Kind::kIdent &&
        tokens[i].text == "kKindPairs") {
      table = i;
      break;
    }
  }
  if (table == tokens.size()) return rows;
  const auto& literals = registry.string_literals();
  const auto literal_between = [&](std::size_t from, std::size_t to)
      -> const SourceFile::Literal* {
    for (const auto& literal : literals) {
      if (literal.offset > from && literal.offset < to) return &literal;
    }
    return nullptr;
  };
  for (std::size_t i = table; i + 2 < tokens.size(); ++i) {
    if (tokens[i].text == ";") break;  // end of the table declaration
    if (tokens[i].text != "{" || tokens[i + 1].text != "," ||
        tokens[i + 2].text != "}") {
      continue;
    }
    const SourceFile::Literal* request =
        literal_between(tokens[i].offset, tokens[i + 1].offset);
    const SourceFile::Literal* response =
        literal_between(tokens[i + 1].offset, tokens[i + 2].offset);
    if (request == nullptr || response == nullptr) continue;
    rows.push_back({request->value, response->value,
                    registry.line_of(tokens[i].offset)});
    i += 2;
  }
  return rows;
}

}  // namespace

void check_msg_flow(const Config& config, const std::vector<SourceFile>& files,
                    std::vector<Diagnostic>& out) {
  const SourceFile* registry = nullptr;
  std::map<std::string, const SourceFile*> by_path;
  for (const auto& file : files) {
    by_path[file.path()] = &file;
    if (file.path() == config.registry_path) registry = &file;
  }
  // Registry problems (missing header, malformed table) are wire-kind
  // findings; this check quietly steps aside rather than duplicating
  // them.
  if (registry == nullptr) return;
  std::vector<Diagnostic> scratch;
  const auto ranges = parse_kind_ranges(*registry, scratch);
  if (!ranges.has_value()) return;

  std::set<std::string> helper_names;
  std::map<std::string, std::string> helper_dirs;
  for (const KindRange& range : *ranges) {
    const auto dir = config.component_paths.find(range.component);
    if (dir == config.component_paths.end()) continue;
    helper_names.insert(range.component + "_kind");
    helper_dirs.emplace(range.component, dir->second);
  }

  std::map<std::string, KindInfo> kinds;
  std::map<std::string, TimerInfo> timers;
  for (const auto& file : files) {
    collect_declarations(config, file, helper_names, helper_dirs, kinds,
                         timers);
  }

  // Scheduled-but-unrouted timer candidates: (constant, file, line) of
  // each set_timer site, resolved after the route scan below.
  struct TimerUse {
    std::string name;
    std::string file;
    std::size_t line = 0;
  };
  std::vector<TimerUse> timer_uses;

  for (const auto& file : files) {
    if (!config.in_production_tree(file.path())) continue;
    const std::vector<Token> tokens = tokenize(file);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].kind != Token::Kind::kIdent) continue;

      if (const auto kind = kinds.find(std::string(tokens[i].text));
          kind != kinds.end()) {
        KindInfo& info = kind->second;
        const std::size_t line = file.line_of(tokens[i].offset);
        if (file.path() == info.file && line == info.line) continue;  // decl
        const bool case_label = i > 0 && tokens[i - 1].text == "case";
        if (case_label || statement_compares(tokens, i, "kind")) {
          if (file.path().rfind(info.dir, 0) == 0) {
            ++info.handler_uses;
            if (info.first_handler_file.empty()) {
              info.first_handler_file = file.path();
              info.first_handler_line = line;
            }
          }
        } else {
          ++info.emit_uses;
        }
        continue;
      }

      if (const auto timer = timers.find(std::string(tokens[i].text));
          timer != timers.end()) {
        if (file.path().rfind(timer->second.dir, 0) == 0 &&
            statement_compares(tokens, i, "timer_id")) {
          timer->second.routed = true;
        }
      }

      if (tokens[i].text == "set_timer" && i + 1 < tokens.size() &&
          tokens[i + 1].text == "(") {
        std::vector<std::pair<std::size_t, std::size_t>> args;
        split_call_args(tokens, i + 1, args);
        if (args.size() < 2) continue;
        // Context form: set_timer(delay, id); Simulator form:
        // set_timer(process, delay, id). The id is the last argument
        // either way. Declarations carry type tokens, never a known
        // timer constant, and fall through.
        const auto [first, last] = args.back();
        for (std::size_t a = first; a <= last && a < tokens.size(); ++a) {
          if (tokens[a].kind != Token::Kind::kIdent) continue;
          if (timers.count(std::string(tokens[a].text)) == 0) continue;
          timer_uses.push_back({std::string(tokens[a].text), file.path(),
                                file.line_of(tokens[a].offset)});
        }
      }
    }
  }

  const auto allowed_at = [&](const std::string& path, std::size_t line) {
    const auto it = by_path.find(path);
    return it != by_path.end() && it->second->allowed(kCheck, line);
  };

  for (const auto& [name, info] : kinds) {
    if (info.emit_uses > 0 && info.handler_uses == 0) {
      if (!allowed_at(info.file, info.line)) {
        out.push_back({std::string(kCheck), info.file, info.line,
                       "kind '" + name + "' is emitted but has no handler in " +
                           info.dir +
                           " (no case label or kind comparison routes it)"});
      }
    } else if (info.handler_uses > 0 && info.emit_uses == 0) {
      if (!allowed_at(info.first_handler_file, info.first_handler_line)) {
        out.push_back({std::string(kCheck), info.first_handler_file,
                       info.first_handler_line,
                       "dead handler: kind '" + name +
                           "' is handled here but never emitted anywhere"});
      }
    } else if (info.handler_uses == 0 && info.emit_uses == 0) {
      if (!allowed_at(info.file, info.line)) {
        out.push_back({std::string(kCheck), info.file, info.line,
                       "orphan kind '" + name +
                           "': never emitted and never handled"});
      }
    }
  }

  for (const PairRow& row : parse_kind_pairs(*registry)) {
    if (registry->allowed(kCheck, row.line)) continue;
    const auto request = kinds.find(row.request);
    const auto response = kinds.find(row.response);
    if (request == kinds.end() || response == kinds.end()) {
      const std::string& unknown =
          request == kinds.end() ? row.request : row.response;
      out.push_back({std::string(kCheck), registry->path(), row.line,
                     "kind pair names unknown constant '" + unknown +
                         "' (pairs must name concrete registry-derived "
                         "kinds)"});
      continue;
    }
    if (request->second.component != response->second.component) {
      out.push_back({std::string(kCheck), registry->path(), row.line,
                     "kind pair '" + row.request + "'/'" + row.response +
                         "' spans components '" + request->second.component +
                         "' and '" + response->second.component + "'"});
      continue;
    }
    if (request->second.emit_uses > 0 && response->second.emit_uses == 0) {
      out.push_back({std::string(kCheck), registry->path(), row.line,
                     "unpaired response: request '" + row.request +
                         "' is emitted but its declared response '" +
                         row.response + "' never is"});
    }
    if (response->second.emit_uses > 0 && request->second.emit_uses == 0) {
      out.push_back({std::string(kCheck), registry->path(), row.line,
                     "unpaired request: response '" + row.response +
                         "' is emitted but its declared request '" +
                         row.request + "' never is"});
    }
  }

  for (const TimerUse& use : timer_uses) {
    const auto timer = timers.find(use.name);
    if (timer == timers.end() || timer->second.routed) continue;
    if (allowed_at(use.file, use.line)) continue;
    out.push_back({std::string(kCheck), use.file, use.line,
                   "timer id '" + use.name +
                       "' is scheduled here but no statement in " +
                       timer->second.dir +
                       " tests it against the on_timer timer_id"});
  }
}

}  // namespace mocc::lint
