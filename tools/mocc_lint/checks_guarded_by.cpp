// mocc-guarded-by-coverage: mutable members of mutex-holding classes
// must carry MOCC_GUARDED_BY / MOCC_PT_GUARDED_BY.
//
// The classes sim::ParallelRunner and the shared TraceSink machinery
// reach across threads are exactly the classes that own a mutex, so the
// portable engine enforces the stronger, simpler invariant: any class
// (or struct) in the production tree that declares a mutex member must
// annotate every other mutable data member, or carry an inline allow
// explaining why the member is safe unguarded (thread-confined state is
// the usual reason — use an allow-begin/end region for a block of it).
//
// Member recognition leans on the repo's naming convention: data members
// end in '_'. Const, static, constexpr, reference, and std::atomic
// members are exempt (immutable or self-synchronizing).
#include "lint.hpp"

namespace mocc::lint {

namespace {

struct Statement {
  std::size_t first_token = 0;  ///< index into the token stream
  std::size_t last_token = 0;   ///< inclusive
};

bool ends_with(std::string_view s, char c) {
  return !s.empty() && s.back() == c;
}

/// Index of the matching closer for the opener at `open`, or
/// tokens.size() when unbalanced.
std::size_t matching(const std::vector<Token>& tokens, std::size_t open,
                     std::string_view open_text, std::string_view close_text) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == open_text) ++depth;
    if (tokens[i].text == close_text) {
      if (--depth == 0) return i;
    }
  }
  return tokens.size();
}

}  // namespace

void check_guarded_by(const Config& config, const SourceFile& file,
                      std::vector<Diagnostic>& out) {
  if (!config.in_production_tree(file.path())) return;
  const std::vector<Token> tokens = tokenize(file);

  // Find every class/struct body (any nesting: local classes in .cpp
  // files count — the Logger sink lives in an anonymous namespace).
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent ||
        (tokens[i].text != "class" && tokens[i].text != "struct")) {
      continue;
    }
    // `enum class` is not a class; `class X;` is a forward declaration.
    if (i > 0 && tokens[i - 1].text == "enum") continue;
    std::size_t j = i + 1;
    std::string class_name;
    while (j < tokens.size() && tokens[j].text != "{" && tokens[j].text != ";") {
      if (tokens[j].kind == Token::Kind::kIdent && class_name.empty()) {
        class_name = std::string(tokens[j].text);
      }
      ++j;
    }
    if (j >= tokens.size() || tokens[j].text != ";") {
      if (j >= tokens.size()) continue;
      const std::size_t body_open = j;
      const std::size_t body_close = matching(tokens, body_open, "{", "}");

      // Split the class body into top-level statements, skipping nested
      // braces (function bodies, nested classes are revisited by the
      // outer loop anyway, initializers).
      std::vector<Statement> statements;
      std::size_t start = body_open + 1;
      std::size_t k = body_open + 1;
      while (k < body_close) {
        const std::string_view text = tokens[k].text;
        if (text == "{") {
          const std::size_t close = matching(tokens, k, "{", "}");
          // A brace block not followed by ';' or ',' or '=' terminates a
          // statement (function body); one followed by ';' is an
          // initializer and the ';' closes the statement below.
          if (close + 1 < body_close && (tokens[close + 1].text == ";" ||
                                         tokens[close + 1].text == "," ||
                                         tokens[close + 1].text == "=")) {
            k = close + 1;
            continue;
          }
          start = close + 1;
          k = close + 1;
          continue;
        }
        if (text == "(") {  // parameter lists / initializers: skip atomically
          k = matching(tokens, k, "(", ")") + 1;
          continue;
        }
        if (text == ";") {
          if (k > start) statements.push_back({start, k - 1});
          start = k + 1;
        }
        if (text == ":" && k > start &&
            (tokens[k - 1].text == "public" || tokens[k - 1].text == "private" ||
             tokens[k - 1].text == "protected")) {
          start = k + 1;  // drop access specifiers
        }
        ++k;
      }

      // Pass 1: does this class own a mutex?
      auto classify = [&](const Statement& s) {
        struct Info {
          bool is_field = false;
          bool is_mutex = false;
          bool exempt = false;
          bool annotated = false;
          std::string name;
          std::size_t name_token = 0;
        } info;
        for (std::size_t t = s.first_token; t <= s.last_token; ++t) {
          const std::string_view text = tokens[t].text;
          // Skip paren groups whole: parameter lists and annotation
          // arguments (MOCC_EXCLUDES(mu_)) must not look like members.
          if (text == "(") {
            t = matching(tokens, t, "(", ")");
            continue;
          }
          if (tokens[t].kind == Token::Kind::kIdent) {
            if (text == "using" || text == "typedef" || text == "friend" ||
                text == "enum" || text == "class" || text == "struct" ||
                text == "static" || text == "constexpr" || text == "operator") {
              info.exempt = true;
            }
            if (text == "const" || text == "atomic") info.exempt = true;
            if (text == "MOCC_GUARDED_BY" || text == "MOCC_PT_GUARDED_BY") {
              info.annotated = true;
            }
            if (!info.is_field && ends_with(text, '_') && text.size() > 1) {
              info.is_field = true;
              info.name = std::string(text);
              info.name_token = t;
              // The declared type is everything before the name.
              for (std::size_t u = s.first_token; u < t; ++u) {
                if (tokens[u].text == "mutex") info.is_mutex = true;
                if (tokens[u].text == "&") info.exempt = true;
              }
            }
          }
        }
        return info;
      };

      bool has_mutex = false;
      for (const auto& s : statements) {
        const auto info = classify(s);
        if (info.is_field && info.is_mutex) has_mutex = true;
      }
      if (has_mutex) {
        for (const auto& s : statements) {
          const auto info = classify(s);
          if (!info.is_field || info.is_mutex || info.exempt || info.annotated) {
            continue;
          }
          const std::size_t line = file.line_of(tokens[info.name_token].offset);
          if (file.allowed("guarded-by", line)) continue;
          out.push_back(
              {"guarded-by", file.path(), line,
               "mutable member '" + info.name + "' of mutex-holding class '" +
                   class_name +
                   "' lacks MOCC_GUARDED_BY/MOCC_PT_GUARDED_BY (annotate, or "
                   "justify thread confinement with an inline allow)"});
        }
      }
    }
  }
}

}  // namespace mocc::lint
