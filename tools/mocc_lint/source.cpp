// SourceFile: masking, suppression directives, tokenization.
#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <tuple>

namespace mocc::lint {

bool is_known_check(std::string_view name) {
  for (const auto known : kCheckNames) {
    if (name == known) return true;
  }
  return false;
}

bool operator<(const Diagnostic& a, const Diagnostic& b) {
  return std::tie(a.file, a.line, a.check, a.message) <
         std::tie(b.file, b.line, b.check, b.message);
}

bool operator==(const Diagnostic& a, const Diagnostic& b) {
  return std::tie(a.file, a.line, a.check, a.message) ==
         std::tie(b.file, b.line, b.check, b.message);
}

std::string to_string(const Diagnostic& diagnostic) {
  return diagnostic.file + ":" + std::to_string(diagnostic.line) + ": " +
         diagnostic.check + ": " + diagnostic.message;
}

// --- SourceFile ------------------------------------------------------

SourceFile SourceFile::from_string(std::string path, std::string text) {
  SourceFile file;
  file.path_ = std::move(path);
  file.text_ = std::move(text);
  file.index_lines();
  file.mask();
  file.finalize_regions();
  return file;
}

void SourceFile::index_lines() {
  line_starts_.push_back(0);
  for (std::size_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n' && i + 1 < text_.size()) line_starts_.push_back(i + 1);
  }
}

std::size_t SourceFile::line_of(std::size_t offset) const {
  const auto it =
      std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  return static_cast<std::size_t>(it - line_starts_.begin());
}

namespace {

/// Blanks [begin, end) in `code`, preserving newlines so offsets and
/// line numbers survive masking.
void blank(std::string& code, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end && i < code.size(); ++i) {
    if (code[i] != '\n') code[i] = ' ';
  }
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

void SourceFile::mask() {
  code_ = text_;
  const std::string& t = text_;
  std::size_t i = 0;
  while (i < t.size()) {
    const char c = t[i];
    // Line comment.
    if (c == '/' && i + 1 < t.size() && t[i + 1] == '/') {
      std::size_t end = i;
      while (end < t.size() && t[end] != '\n') ++end;
      parse_directives(i, std::string_view(t).substr(i, end - i));
      blank(code_, i, end);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < t.size() && t[i + 1] == '*') {
      std::size_t end = t.find("*/", i + 2);
      end = end == std::string::npos ? t.size() : end + 2;
      parse_directives(i, std::string_view(t).substr(i, end - i));
      blank(code_, i, end);
      i = end;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < t.size() && t[i + 1] == '"' &&
        (i == 0 || !ident_char(t[i - 1]))) {
      std::size_t delim_end = i + 2;
      while (delim_end < t.size() && t[delim_end] != '(') ++delim_end;
      const std::string closer =
          ")" + t.substr(i + 2, delim_end - (i + 2)) + "\"";
      std::size_t end = t.find(closer, delim_end);
      end = end == std::string::npos ? t.size() : end + closer.size();
      literals_.push_back(
          {i + 1, t.substr(delim_end + 1, end - closer.size() - delim_end - 1)});
      blank(code_, i, end);
      i = end;
      continue;
    }
    // String literal.
    if (c == '"') {
      std::size_t end = i + 1;
      while (end < t.size() && t[end] != '"' && t[end] != '\n') {
        if (t[end] == '\\' && end + 1 < t.size()) ++end;
        ++end;
      }
      if (end < t.size() && t[end] == '"') ++end;
      literals_.push_back({i, t.substr(i + 1, end - i - (end > i + 1 ? 2 : 1))});
      blank(code_, i, end);
      i = end;
      continue;
    }
    // Character literal — but not a digit separator (1'000'000).
    if (c == '\'') {
      if (i > 0 && std::isalnum(static_cast<unsigned char>(t[i - 1])) != 0 &&
          i + 1 < t.size() &&
          std::isalnum(static_cast<unsigned char>(t[i + 1])) != 0) {
        ++i;  // digit separator, leave in place
        continue;
      }
      std::size_t end = i + 1;
      while (end < t.size() && t[end] != '\'' && t[end] != '\n') {
        if (t[end] == '\\' && end + 1 < t.size()) ++end;
        ++end;
      }
      if (end < t.size() && t[end] == '\'') ++end;
      blank(code_, i, end);
      i = end;
      continue;
    }
    ++i;
  }
}

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

void SourceFile::parse_directives(std::size_t comment_offset,
                                  std::string_view comment) {
  static constexpr std::string_view kMarker = "mocc-lint:";
  std::size_t pos = comment.find(kMarker);
  while (pos != std::string_view::npos) {
    const std::size_t directive_offset = comment_offset + pos;
    const std::size_t line = line_of(directive_offset);
    std::string_view rest = trim(comment.substr(pos + kMarker.size()));

    // Directives the wire-kind fixture/header use for other purposes
    // ("mocc-lint: wire-range" style) are not suppressions; only the
    // allow family is parsed here.
    std::string_view verb;
    for (const std::string_view v : {"allow-begin", "allow-end", "allow"}) {
      if (rest.substr(0, v.size()) == v) {
        verb = v;
        break;
      }
    }
    if (verb.empty()) {
      pos = comment.find(kMarker, pos + kMarker.size());
      continue;
    }
    rest.remove_prefix(verb.size());
    rest = trim(rest);
    std::string check;
    std::string_view after_check;
    if (!rest.empty() && rest.front() == '(') {
      const std::size_t close = rest.find(')');
      if (close != std::string_view::npos) {
        check = std::string(trim(rest.substr(1, close - 1)));
        after_check = trim(rest.substr(close + 1));
      }
    }
    if (check.empty() || !is_known_check(check)) {
      suppression_diagnostics_.push_back(
          {"suppression", path_, line,
           "mocc-lint: " + std::string(verb) +
               " needs a known check name in parentheses (got '" + check +
               "')"});
    } else if (verb == "allow" || verb == "allow-begin") {
      // Justification required: "mocc-lint: allow(check): why".
      std::string_view justification = after_check;
      if (!justification.empty() && justification.front() == ':') {
        justification = trim(justification.substr(1));
      } else {
        justification = {};
      }
      if (justification.empty()) {
        suppression_diagnostics_.push_back(
            {"suppression", path_, line,
             "mocc-lint: " + std::string(verb) + "(" + check +
                 ") requires a justification after a colon"});
      } else if (verb == "allow") {
        // Covers its own line; a standalone comment also covers the next
        // line (the flagged declaration usually sits below it).
        allow_lines_[check].insert(line);
        const std::size_t line_begin = line_starts_[line - 1];
        bool code_before = false;
        for (std::size_t i = line_begin; i < comment_offset; ++i) {
          if (std::isspace(static_cast<unsigned char>(code_[i])) == 0) {
            code_before = true;
            break;
          }
        }
        if (!code_before) allow_lines_[check].insert(line + 1);
      } else {
        open_regions_[check].push_back(line);
      }
    } else {  // allow-end
      auto& open = open_regions_[check];
      if (open.empty()) {
        suppression_diagnostics_.push_back(
            {"suppression", path_, line,
             "mocc-lint: allow-end(" + check + ") without a matching begin"});
      } else {
        allow_regions_[check].push_back({open.back(), line});
        open.pop_back();
      }
    }
    pos = comment.find(kMarker, pos + kMarker.size());
  }
}

void SourceFile::finalize_regions() {
  for (auto& [check, begins] : open_regions_) {
    for (const std::size_t begin : begins) {
      suppression_diagnostics_.push_back(
          {"suppression", path_, begin,
           "mocc-lint: allow-begin(" + check + ") is never closed"});
    }
    begins.clear();
  }
}

bool SourceFile::allowed(std::string_view check, std::size_t line) const {
  if (const auto it = allow_lines_.find(check); it != allow_lines_.end()) {
    if (it->second.count(line) != 0) return true;
  }
  if (const auto it = allow_regions_.find(check); it != allow_regions_.end()) {
    for (const auto& [begin, end] : it->second) {
      if (line >= begin && line <= end) return true;
    }
  }
  return false;
}

// --- Tokenizer -------------------------------------------------------

std::vector<Token> tokenize(const SourceFile& file) {
  const std::string& code = file.code();
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t end = i;
      while (end < code.size() && ident_char(code[end])) ++end;
      tokens.push_back({Token::Kind::kIdent,
                        std::string_view(code).substr(i, end - i), i});
      i = end;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t end = i;
      while (end < code.size() &&
             (ident_char(code[end]) || code[end] == '\'' ||
              (code[end] == '.' && end + 1 < code.size() &&
               std::isdigit(static_cast<unsigned char>(code[end + 1])) != 0))) {
        ++end;
      }
      tokens.push_back({Token::Kind::kNumber,
                        std::string_view(code).substr(i, end - i), i});
      i = end;
      continue;
    }
    std::size_t len = 1;
    if (i + 1 < code.size()) {
      const char d = code[i + 1];
      if ((c == ':' && d == ':') || (c == '-' && d == '>')) len = 2;
    }
    tokens.push_back(
        {Token::Kind::kPunct, std::string_view(code).substr(i, len), i});
    i += len;
  }
  return tokens;
}

// --- Config ----------------------------------------------------------

Config Config::repo_default() {
  Config config;
  config.deterministic_paths = {"src/sim/",   "src/abcast/", "src/protocols/",
                                "src/fault/", "src/obs/",    "src/txn/",
                                "src/exec/",  "bench/experiments.cpp"};
  config.component_paths = {{"reliable_link", "src/fault/"},
                            {"abcast", "src/abcast/"},
                            {"protocols", "src/protocols/"}};
  config.production_paths = {"src/", "bench/"};
  config.sched_hook_paths = {"src/abcast/", "src/protocols/", "src/fault/"};
  config.atomics_paths = {"src/exec/"};
  config.registry_path = "src/sim/wire_kinds.hpp";
  config.trace_header_path = "src/obs/trace.hpp";
  config.trace_source_path = "src/obs/trace.cpp";
  config.trace_docs_path = "docs/observability.md";
  return config;
}

namespace {
bool has_prefix_in(std::string_view path, const std::vector<std::string>& set) {
  for (const auto& prefix : set) {
    if (path.substr(0, prefix.size()) == prefix) return true;
  }
  return false;
}
}  // namespace

bool Config::in_deterministic_subtree(std::string_view path) const {
  return has_prefix_in(path, deterministic_paths);
}

bool Config::in_production_tree(std::string_view path) const {
  return has_prefix_in(path, production_paths);
}

bool Config::in_sched_hook_tree(std::string_view path) const {
  return has_prefix_in(path, sched_hook_paths);
}

bool Config::in_atomics_tree(std::string_view path) const {
  return has_prefix_in(path, atomics_paths);
}

}  // namespace mocc::lint
