// mocc-wire-kind: message-kind constants derive from the central
// registry, stay in range, live in their component's directory, and
// never collide across translation units.
//
// The registry is the kKindRanges table in src/sim/wire_kinds.hpp; a
// component's kinds are built with its <component>_kind(offset) helper
// (or First/Last base constants). The check
//   1. parses the table (one entry per line, literal values);
//   2. collects every `constexpr std::uint32_t NAME = EXPR;` in the
//      tree and evaluates EXPR with a small +/- interpreter that knows
//      the helpers and base constants — a constant is a *kind constant*
//      iff its value derives (transitively) from the registry;
//   3. flags kind constants whose value leaves the component's range,
//      whose file sits outside the component's directory, or whose
//      value collides with a different kind constant of the same
//      component in any TU;
//   4. flags send call sites whose kind argument is a raw integer
//      literal or a constant that does not derive from the registry.
//
// Send-site argument positions follow the stack's fixed signatures:
//   send(to, kind, payload)                   Context        3 args, kind #2
//   send(ctx, to, kind, payload)              link / abcast  4 args, kind #3
//   send_to_others(kind, payload)             Context        2 args, kind #1
//   net_send(ctx, to, kind, payload)                         4 args, kind #3
//   net_send_to_others(ctx, kind, payload)                   3 args, kind #2
#include "lint.hpp"

#include <cctype>
#include <cstdint>
#include <map>
#include <string>

namespace mocc::lint {

namespace {

struct RangeTable {
  std::vector<KindRange> ranges;

  const KindRange* by_component(std::string_view name) const {
    for (const auto& range : ranges) {
      if (range.component == name) return &range;
    }
    return nullptr;
  }
  const KindRange* by_value(std::uint32_t kind) const {
    for (const auto& range : ranges) {
      if (kind >= range.first && kind <= range.last) return &range;
    }
    return nullptr;
  }
};

/// "reliable_link" -> "ReliableLink" (the registry's base-constant
/// naming: kReliableLinkFirst / kReliableLinkLast).
std::string camel_case(std::string_view component) {
  std::string camel;
  bool upper = true;
  for (const char c : component) {
    if (c == '_') {
      upper = true;
      continue;
    }
    camel.push_back(upper ? static_cast<char>(
                                std::toupper(static_cast<unsigned char>(c)))
                          : c);
    upper = false;
  }
  return camel;
}

struct Constant {
  std::string name;
  std::string file;
  std::size_t line = 0;
  std::string init;  ///< initializer expression text (masked code)
  // resolution results:
  bool resolved = false;
  bool from_registry = false;
  bool via_helper = false;  ///< concrete kind (vs. a First/Last marker)
  bool range_error = false;
  std::uint32_t value = 0;
  std::string component;  ///< first registry component the expr touches
};

/// Recursive-descent evaluator for initializer expressions:
///   expr  := term (('+'|'-') term)*
///   term  := NUMBER | ident-chain | ident-chain '(' expr ')' | '(' expr ')'
/// Identifier chains resolve against the registry (helpers, First/Last
/// bases) and the cross-TU constant table (transitively).
class Evaluator {
 public:
  Evaluator(const RangeTable& table,
            std::map<std::string, Constant>& constants)
      : table_(table), constants_(constants) {
    for (const auto& range : table_.ranges) {
      const std::string camel = camel_case(range.component);
      bases_["k" + camel + "First"] = {range.component, range.first};
      bases_["k" + camel + "Last"] = {range.component, range.last};
      helpers_[range.component + "_kind"] = range.component;
    }
  }

  struct Result {
    bool resolved = false;
    bool from_registry = false;
    bool via_helper = false;  ///< value came through a _kind() helper
    bool range_error = false;
    std::uint32_t value = 0;
    std::string component;
  };

  Result eval(const std::string& expr, int depth) {
    // Re-entrant: nested constant lookups recurse through eval().
    const std::size_t saved_pos = pos_;
    std::string saved_text = std::move(text_);
    text_ = expr;
    pos_ = 0;
    Result result = parse_expr(depth);
    skip_ws();
    if (pos_ != text_.size()) result.resolved = false;
    text_ = std::move(saved_text);
    pos_ = saved_pos;
    return result;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  Result parse_expr(int depth) {
    Result left = parse_term(depth);
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() ||
          (text_[pos_] != '+' && text_[pos_] != '-')) {
        return left;
      }
      const char op = text_[pos_++];
      const Result right = parse_term(depth);
      if (!left.resolved || !right.resolved) {
        left.resolved = false;
        continue;
      }
      left.value = op == '+' ? left.value + right.value
                             : left.value - right.value;
      left.from_registry = left.from_registry || right.from_registry;
      left.via_helper = left.via_helper || right.via_helper;
      left.range_error = left.range_error || right.range_error;
      if (left.component.empty()) left.component = right.component;
    }
  }

  Result parse_term(int depth) {
    skip_ws();
    Result result;
    if (pos_ >= text_.size()) return result;
    if (text_[pos_] == '(') {
      ++pos_;
      result = parse_expr(depth);
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ')') ++pos_;
      return result;
    }
    if (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      std::uint64_t value = 0;
      bool hex = false;
      if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
          (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
        hex = true;
        pos_ += 2;
      }
      while (pos_ < text_.size()) {
        const char c = text_[pos_];
        if (c == '\'') {
          ++pos_;
          continue;
        }
        const int digit = hex ? (std::isxdigit(static_cast<unsigned char>(c))
                                     ? (std::isdigit(static_cast<unsigned char>(c))
                                            ? c - '0'
                                            : std::tolower(c) - 'a' + 10)
                                     : -1)
                              : (std::isdigit(static_cast<unsigned char>(c))
                                     ? c - '0'
                                     : -1);
        if (digit < 0) break;
        value = value * (hex ? 16 : 10) + static_cast<std::uint64_t>(digit);
        ++pos_;
      }
      while (pos_ < text_.size() &&
             (text_[pos_] == 'u' || text_[pos_] == 'U' || text_[pos_] == 'l' ||
              text_[pos_] == 'L')) {
        ++pos_;  // integer suffixes
      }
      result.resolved = true;
      result.value = static_cast<std::uint32_t>(value);
      return result;
    }
    if (std::isalpha(static_cast<unsigned char>(text_[pos_])) != 0 ||
        text_[pos_] == '_') {
      // Identifier chain a::b::c — only the final component matters for
      // lookup (the tree never overloads these names across scopes).
      std::string name;
      for (;;) {
        name.clear();
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '_')) {
          name.push_back(text_[pos_++]);
        }
        skip_ws();
        if (pos_ + 1 < text_.size() && text_[pos_] == ':' &&
            text_[pos_ + 1] == ':') {
          pos_ += 2;
          skip_ws();
          continue;
        }
        break;
      }
      skip_ws();
      if (const auto helper = helpers_.find(name); helper != helpers_.end()) {
        if (pos_ >= text_.size() || text_[pos_] != '(') return result;
        ++pos_;
        const Result offset = parse_expr(depth);
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ')') ++pos_;
        if (!offset.resolved) return result;
        const KindRange* range = table_.by_component(helper->second);
        result.resolved = true;
        result.from_registry = true;
        result.via_helper = true;
        result.component = helper->second;
        result.value = range->first + offset.value;
        result.range_error = offset.value > range->last - range->first;
        return result;
      }
      if (const auto base = bases_.find(name); base != bases_.end()) {
        result.resolved = true;
        result.from_registry = true;
        result.component = base->second.first;
        result.value = base->second.second;
        return result;
      }
      if (depth < 8) {
        if (const auto it = constants_.find(name); it != constants_.end()) {
          Constant& ref = it->second;
          const Result nested = eval(ref.init, depth + 1);
          return nested;
        }
      }
      return result;  // unknown identifier: unresolved
    }
    return result;
  }

  const RangeTable& table_;
  std::map<std::string, Constant>& constants_;
  std::map<std::string, std::pair<std::string, std::uint32_t>> bases_;
  std::map<std::string, std::string> helpers_;  ///< helper name -> component
  std::string text_;
  std::size_t pos_ = 0;
};

/// Collects `constexpr std::uint32_t NAME = EXPR;` declarations from the
/// masked code of one file.
void collect_constants(const SourceFile& file,
                       std::map<std::string, Constant>& constants) {
  const std::vector<Token> tokens = tokenize(file);
  for (std::size_t i = 0; i + 6 < tokens.size(); ++i) {
    if (tokens[i].text != "constexpr") continue;
    // constexpr [std ::] uint32_t NAME = ... ;
    std::size_t j = i + 1;
    if (tokens[j].text == "std" && tokens[j + 1].text == "::") j += 2;
    if (tokens[j].text != "uint32_t") continue;
    ++j;
    if (j >= tokens.size() || tokens[j].kind != Token::Kind::kIdent) continue;
    const std::size_t name_index = j;
    ++j;
    if (j >= tokens.size() || tokens[j].text != "=") continue;
    ++j;
    std::size_t k = j;
    while (k < tokens.size() && tokens[k].text != ";") ++k;
    if (k >= tokens.size()) continue;
    const std::size_t init_begin = tokens[j].offset;
    const std::size_t init_end = tokens[k].offset;
    Constant constant;
    constant.name = std::string(tokens[name_index].text);
    constant.file = file.path();
    constant.line = file.line_of(tokens[name_index].offset);
    constant.init = file.code().substr(init_begin, init_end - init_begin);
    // First declaration wins; the tree keeps these names unique, and
    // fixtures that deliberately collide use distinct names.
    constants.emplace(constant.name, std::move(constant));
  }
}

/// Splits the argument list starting right after the '(' at `open` into
/// top-level argument token ranges. Returns the index of the matching
/// ')' (or tokens.size()).
std::size_t split_args(const std::vector<Token>& tokens, std::size_t open,
                       std::vector<std::pair<std::size_t, std::size_t>>& args) {
  std::size_t depth = 1;
  std::size_t start = open + 1;
  std::size_t i = open + 1;
  for (; i < tokens.size(); ++i) {
    const std::string_view text = tokens[i].text;
    if (text == "(" || text == "[" || text == "{") ++depth;
    if (text == ")" || text == "]" || text == "}") {
      if (--depth == 0) break;
    }
    if (text == "," && depth == 1) {
      if (i > start) args.push_back({start, i - 1});
      start = i + 1;
    }
  }
  if (i > start && i < tokens.size()) args.push_back({start, i - 1});
  return i;
}

std::uint32_t parse_number(std::string_view text) {
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c == '\'') continue;
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) break;  // suffixes
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

std::optional<std::vector<KindRange>> parse_kind_ranges(
    const SourceFile& registry, std::vector<Diagnostic>& out) {
  // Table rows look like:  {"abcast", 100, 199},
  // String contents are masked, so the tokens of a row are
  // `{ , NUMBER , NUMBER }` and the component name is recovered from the
  // literal list by offset.
  std::vector<KindRange> ranges;
  std::vector<std::size_t> row_lines;
  const std::vector<Token> tokens = tokenize(registry);
  const auto& literals = registry.string_literals();
  for (std::size_t i = 0; i + 5 < tokens.size(); ++i) {
    if (tokens[i].text != "{" || tokens[i + 1].text != ",") continue;
    if (tokens[i + 2].kind != Token::Kind::kNumber) continue;
    if (tokens[i + 3].text != "," || tokens[i + 4].kind != Token::Kind::kNumber)
      continue;
    if (tokens[i + 5].text != "}") continue;
    // The masked component-name literal sat between '{' and ','.
    const SourceFile::Literal* name = nullptr;
    for (const auto& literal : literals) {
      if (literal.offset > tokens[i].offset &&
          literal.offset < tokens[i + 1].offset) {
        name = &literal;
        break;
      }
    }
    if (name == nullptr || name->value.empty()) continue;
    ranges.push_back({name->value, parse_number(tokens[i + 2].text),
                      parse_number(tokens[i + 4].text)});
    row_lines.push_back(registry.line_of(tokens[i].offset));
    i += 5;
  }
  if (ranges.empty()) {
    out.push_back({"wire-kind", registry.path(), 1,
                   "registry header has no parseable kKindRanges rows "
                   "({\"component\", first, last} with literal bounds)"});
    return std::nullopt;
  }
  bool malformed = false;
  for (std::size_t r = 0; r < ranges.size(); ++r) {
    if (ranges[r].first > ranges[r].last) {
      out.push_back({"wire-kind", registry.path(), row_lines[r],
                     "registry range '" + ranges[r].component +
                         "' is inverted (first > last)"});
      malformed = true;
    }
    if (r > 0 && ranges[r].first <= ranges[r - 1].last) {
      out.push_back({"wire-kind", registry.path(), row_lines[r],
                     "registry range '" + ranges[r].component +
                         "' overlaps or is not sorted after '" +
                         ranges[r - 1].component + "'"});
      malformed = true;
    }
  }
  if (malformed) return std::nullopt;
  return ranges;
}

void check_wire_kind(const Config& config, const std::vector<SourceFile>& files,
                     std::vector<Diagnostic>& out) {
  const SourceFile* registry = nullptr;
  std::map<std::string, const SourceFile*> by_path;
  for (const auto& file : files) {
    by_path[file.path()] = &file;
    if (file.path() == config.registry_path) registry = &file;
  }
  if (registry == nullptr) {
    out.push_back({"wire-kind", config.registry_path, 1,
                   "kind registry header is missing from the scanned tree"});
    return;
  }
  const auto parsed = parse_kind_ranges(*registry, out);
  if (!parsed.has_value()) return;
  RangeTable table{*parsed};

  std::map<std::string, Constant> constants;
  for (const auto& file : files) collect_constants(file, constants);
  Evaluator evaluator(table, constants);
  for (auto& [name, constant] : constants) {
    const Evaluator::Result result = evaluator.eval(constant.init, 0);
    constant.resolved = result.resolved;
    constant.from_registry = result.from_registry;
    constant.value = result.value;
    constant.component = result.component;
    constant.via_helper = result.via_helper;
    constant.range_error = result.range_error;
  }

  // Per-constant diagnostics. The registry's own declarations are the
  // definition of the ranges, not uses of them.
  std::map<std::uint32_t, const Constant*> first_with_value;
  for (const auto& [name, constant] : constants) {
    if (constant.file == config.registry_path) continue;
    if (!constant.resolved || !constant.from_registry) continue;
    const SourceFile* file = by_path[constant.file];
    const bool suppressed =
        file != nullptr && file->allowed("wire-kind", constant.line);

    const KindRange* declared = table.by_component(constant.component);
    if (constant.range_error ||
        (declared != nullptr && (constant.value < declared->first ||
                                 constant.value > declared->last))) {
      if (!suppressed) {
        out.push_back({"wire-kind", constant.file, constant.line,
                       "kind constant '" + name + "' = " +
                           std::to_string(constant.value) + " escapes the '" +
                           constant.component + "' range [" +
                           std::to_string(declared->first) + ", " +
                           std::to_string(declared->last) + "]"});
      }
      continue;  // out-of-range values would fake collisions below
    }
    if (const auto dir = config.component_paths.find(constant.component);
        dir != config.component_paths.end() && !suppressed &&
        constant.file.compare(0, dir->second.size(), dir->second) != 0) {
      out.push_back({"wire-kind", constant.file, constant.line,
                     "kind constant '" + name + "' of component '" +
                         constant.component + "' is defined outside " +
                         dir->second +
                         " (kinds live with their component)"});
    }
    // Collisions: only concrete kinds (helper-derived) participate;
    // First/Last range markers alias kind 0 of their component by design.
    if (!constant.via_helper) continue;
    const auto [it, inserted] =
        first_with_value.try_emplace(constant.value, &constant);
    if (!inserted) {
      const Constant& other = *it->second;
      const SourceFile* other_file = by_path[other.file];
      const bool other_suppressed =
          other_file != nullptr && other_file->allowed("wire-kind", other.line);
      if (!suppressed && !other_suppressed) {
        out.push_back({"wire-kind", constant.file, constant.line,
                       "kind constant '" + name + "' = " +
                           std::to_string(constant.value) + " collides with '" +
                           other.name + "' (" + other.file + ":" +
                           std::to_string(other.line) + ")"});
      }
    }
  }

  // Send sites: the kind argument must not be a raw integer literal, and
  // an expression the evaluator can resolve must derive from the
  // registry. Runtime-forwarded kinds (plain variables, message fields)
  // stay out of reach of the token engine and pass.
  for (const auto& file : files) {
    if (!config.in_production_tree(file.path())) continue;
    const std::vector<Token> tokens = tokenize(file);
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind != Token::Kind::kIdent) continue;
      const std::string_view callee = tokens[i].text;
      if (callee != "send" && callee != "send_to_others" &&
          callee != "net_send" && callee != "net_send_to_others") {
        continue;
      }
      if (tokens[i + 1].text != "(") continue;
      std::vector<std::pair<std::size_t, std::size_t>> args;
      split_args(tokens, i + 1, args);
      // kind-argument position per (callee, arity); -1 = not a send we
      // know (e.g. a declaration or an unrelated overload).
      int kind_arg = -1;
      if (callee == "send" && args.size() == 3) kind_arg = 1;
      if (callee == "send" && args.size() == 4) kind_arg = 2;
      if (callee == "send_to_others" && args.size() == 2) kind_arg = 0;
      if (callee == "send_to_others" && args.size() == 3) kind_arg = 1;
      if (callee == "net_send" && args.size() == 4) kind_arg = 2;
      if (callee == "net_send_to_others" && args.size() == 3) kind_arg = 1;
      if (kind_arg < 0) continue;
      const auto [first, last] = args[static_cast<std::size_t>(kind_arg)];
      // Declarations ("MessageId send(Process to, uint32_t kind, ...)")
      // have multi-token args whose first token is a type name; weed
      // them out by requiring the argument to be an expression the
      // evaluator understands or a single token.
      const std::size_t line = file.line_of(tokens[first].offset);
      if (first == last && tokens[first].kind == Token::Kind::kNumber) {
        if (!file.allowed("wire-kind", line)) {
          out.push_back(
              {"wire-kind", file.path(), line,
               "raw integer kind '" + std::string(tokens[first].text) +
                   "' passed to " + std::string(callee) +
                   "() (use a constant derived from sim/wire_kinds.hpp)"});
        }
        continue;
      }
      const std::size_t expr_begin = tokens[first].offset;
      const std::size_t expr_end = tokens[last].offset + tokens[last].text.size();
      const Evaluator::Result result =
          evaluator.eval(file.code().substr(expr_begin, expr_end - expr_begin),
                         0);
      if (result.resolved && !result.from_registry &&
          !file.allowed("wire-kind", line)) {
        out.push_back({"wire-kind", file.path(), line,
                       "kind argument of " + std::string(callee) +
                           "() resolves to " + std::to_string(result.value) +
                           " without deriving from sim/wire_kinds.hpp"});
      }
    }
  }
}

}  // namespace mocc::lint
