// mocc-sched-hook: the protocol layers introduce no scheduling decision
// the ScheduleController cannot see.
//
// mocc-check's exhaustiveness claim — "every delivery interleaving of
// this configuration was explored" — holds only if every
// nondeterministic event in src/abcast, src/protocols and src/fault
// enters the simulator through the send seam (Simulator::send via
// NodeContext), where controlled mode interposes its choice points.
// A direct queue push — Simulator::schedule_call or the cross-thread
// post() — creates an event the controller never enumerates, silently
// shrinking the explored schedule space while the tool still reports
// "complete". Harness code (the workload driver's self-rescheduling
// issue loop) is the sanctioned exception and carries inline allows.
#include "lint.hpp"

namespace mocc::lint {

void check_sched_hook(const Config& config, const SourceFile& file,
                      std::vector<Diagnostic>& out) {
  if (!config.in_sched_hook_tree(file.path())) return;
  const std::vector<Token> tokens = tokenize(file);
  auto emit = [&](std::size_t offset, std::string message) {
    const std::size_t line = file.line_of(offset);
    if (file.allowed("sched-hook", line)) return;
    out.push_back({"sched-hook", file.path(), line, std::move(message)});
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdent) continue;

    if (tok.text == "schedule_call") {
      emit(tok.offset,
           "'schedule_call' in the protocol layer (a direct simulator "
           "queue push bypasses the ScheduleController, so mocc-check "
           "cannot enumerate the event; route through the send seam or "
           "justify with an inline allow)");
      continue;
    }

    if (tok.text == "post") {
      // Only calls that name a member or qualified function: `sim.post(`,
      // `sim->post(`, `Simulator::post(` — a field or local named `post`
      // without a call stays legal.
      const bool called = i + 1 < tokens.size() && tokens[i + 1].text == "(";
      if (!called || i == 0) continue;
      const std::string_view prev = tokens[i - 1].text;
      if (prev != "." && prev != "->" && prev != "::") continue;
      emit(tok.offset,
           "'post' call in the protocol layer (cross-thread queue "
           "injection bypasses the ScheduleController; only harness code "
           "may post, with an inline allow)");
    }
  }
}

}  // namespace mocc::lint
