// mocc-atomics: publication discipline for lock-free subtrees.
//
// The exec engine's correctness (seqlock stable_read, OCC version-word
// commit, the real-time refinement argument over the seq_cst counters)
// lives entirely in memory-order choices the compiler never checks. This
// check makes the discipline an explicit, machine-checked artifact:
//
//   1. a per-field table is declared next to the field definition:
//        // mocc-atomics: word: load=acquire,relaxed store=release cas=acq_rel/acquire
//        // mocc-atomics: clock: rmw=seq_cst load=relaxed store=relaxed
//      op classes are load, store, rmw (fetch_*/exchange) and cas
//      (success/failure orders, '/'-separated); orders are comma lists
//      over relaxed, consume, acquire, release, acq_rel, seq_cst;
//   2. tables are collected cross-TU across atomics_paths (declared in
//      store.hpp next to Slot, checked against every site in store.cpp);
//   3. every `.load/.store/.fetch_*/.exchange/.compare_exchange_*` site
//      in the subtree must spell its std::memory_order explicitly (a
//      bare fetch_add(1) is an implicit seq_cst — allowed semantics,
//      but invisible intent), the spelled order must be in the field's
//      declared set, and compare_exchange must spell BOTH orders;
//   4. relaxed is never self-justifying: even when the table anticipates
//      it, each relaxed site needs the inline justified-allow escape
//      hatch (// mocc-lint: allow(atomics): <why>), so every ordering
//      downgrade carries its argument in the diff.
//
// The clang AST frontend re-checks implicit orders precisely (a
// defaulted memory_order parameter is a CXXDefaultArgExpr) and
// additionally flags operator sugar (++/--/=/implicit conversion) that
// bypasses the explicit-order methods entirely; the token engine cannot
// see overload resolution, so operator accesses are AST-only findings.
#include "lint.hpp"

#include <cctype>
#include <map>
#include <set>
#include <string>

namespace mocc::lint {

namespace {

constexpr std::string_view kCheck = "atomics";

constexpr std::string_view kOrders[] = {"relaxed", "consume", "acquire",
                                        "release", "acq_rel", "seq_cst"};

bool is_order(std::string_view name) {
  for (const auto order : kOrders) {
    if (order == name) return true;
  }
  return false;
}

/// Atomic access methods and their op class.
enum class Op { kLoad, kStore, kRmw, kCas };

const std::map<std::string_view, Op>& method_ops() {
  static const std::map<std::string_view, Op> kMethods = {
      {"load", Op::kLoad},
      {"store", Op::kStore},
      {"exchange", Op::kRmw},
      {"fetch_add", Op::kRmw},
      {"fetch_sub", Op::kRmw},
      {"fetch_and", Op::kRmw},
      {"fetch_or", Op::kRmw},
      {"fetch_xor", Op::kRmw},
      {"compare_exchange_strong", Op::kCas},
      {"compare_exchange_weak", Op::kCas},
  };
  return kMethods;
}

std::string_view op_name(Op op) {
  switch (op) {
    case Op::kLoad:
      return "load";
    case Op::kStore:
      return "store";
    case Op::kRmw:
      return "rmw";
    case Op::kCas:
      return "cas";
  }
  return "?";
}

struct FieldRule {
  std::string file;  ///< declaring file (for duplicate reporting)
  std::size_t line = 0;
  /// op class -> allowed orders; absent op class = not declared.
  std::map<Op, std::set<std::string>> ops;
  std::set<std::string> cas_failure;  ///< failure orders (cas success
                                      ///< orders live in ops[kCas])
};

/// Parses one `field: op=orders...` row body (text after the marker).
/// Returns false (leaving `why` set) on malformed syntax.
bool parse_row(std::string_view body, FieldRule& rule, std::string& field,
               std::string& why) {
  const auto skip_spaces = [&](std::size_t i) {
    while (i < body.size() &&
           std::isspace(static_cast<unsigned char>(body[i])) != 0) {
      ++i;
    }
    return i;
  };
  std::size_t i = skip_spaces(0);
  std::size_t start = i;
  while (i < body.size() &&
         (std::isalnum(static_cast<unsigned char>(body[i])) != 0 ||
          body[i] == '_')) {
    ++i;
  }
  field.assign(body.substr(start, i - start));
  i = skip_spaces(i);
  if (field.empty() || i >= body.size() || body[i] != ':') {
    why = "expected '<field>: <op>=<orders>...'";
    return false;
  }
  i = skip_spaces(i + 1);
  bool any_op = false;
  while (i < body.size()) {
    start = i;
    while (i < body.size() && body[i] != '=' &&
           std::isspace(static_cast<unsigned char>(body[i])) == 0) {
      ++i;
    }
    const std::string op_text(body.substr(start, i - start));
    if (i >= body.size() || body[i] != '=') {
      why = "expected '=' after op class '" + op_text + "'";
      return false;
    }
    Op op;
    if (op_text == "load") {
      op = Op::kLoad;
    } else if (op_text == "store") {
      op = Op::kStore;
    } else if (op_text == "rmw") {
      op = Op::kRmw;
    } else if (op_text == "cas") {
      op = Op::kCas;
    } else {
      why = "unknown op class '" + op_text +
            "' (expected load, store, rmw, or cas)";
      return false;
    }
    ++i;  // past '='
    // Orders: comma list; for cas, success orders then '/' then failure
    // orders.
    bool in_failure = false;
    while (i < body.size() &&
           std::isspace(static_cast<unsigned char>(body[i])) == 0) {
      start = i;
      while (i < body.size() && body[i] != ',' && body[i] != '/' &&
             std::isspace(static_cast<unsigned char>(body[i])) == 0) {
        ++i;
      }
      const std::string order(body.substr(start, i - start));
      if (!is_order(order)) {
        why = "unknown memory order '" + order + "'";
        return false;
      }
      if (op == Op::kCas && in_failure) {
        rule.cas_failure.insert(order);
      } else {
        rule.ops[op].insert(order);
      }
      if (i < body.size() && body[i] == '/') {
        if (op != Op::kCas) {
          why = "'/' separator is only valid for cas success/failure";
          return false;
        }
        in_failure = true;
        ++i;
      } else if (i < body.size() && body[i] == ',') {
        ++i;
      }
    }
    if (op == Op::kCas && rule.cas_failure.empty()) {
      why = "cas needs success and failure orders ('succ/fail')";
      return false;
    }
    any_op = true;
    i = skip_spaces(i);
  }
  if (!any_op) {
    why = "discipline row declares no op classes";
    return false;
  }
  return true;
}

/// Collects `// mocc-atomics:` rows from the raw text of one file.
void collect_tables(const SourceFile& file,
                    std::map<std::string, FieldRule>& table,
                    std::vector<Diagnostic>& out) {
  static constexpr std::string_view kMarker = "mocc-atomics:";
  const std::string& text = file.text();
  std::size_t line_start = 0;
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    const std::string_view line(text.data() + line_start,
                                line_end - line_start);
    const std::size_t marker = line.find(kMarker);
    if (marker != std::string_view::npos &&
        line.substr(0, marker).find("//") != std::string_view::npos) {
      const std::size_t line_number = file.line_of(line_start);
      FieldRule rule;
      rule.file = file.path();
      rule.line = line_number;
      std::string field;
      std::string why;
      if (!parse_row(line.substr(marker + kMarker.size()), rule, field,
                     why)) {
        out.push_back({std::string(kCheck), file.path(), line_number,
                       "malformed mocc-atomics row: " + why});
      } else {
        const auto [it, inserted] = table.try_emplace(field, std::move(rule));
        if (!inserted) {
          out.push_back({std::string(kCheck), file.path(), line_number,
                         "duplicate mocc-atomics row for field '" + field +
                             "' (first declared at " + it->second.file + ":" +
                             std::to_string(it->second.line) + ")"});
        }
      }
    }
    line_start = line_end + 1;
  }
}

/// Memory orders spelled in the argument tokens [first, last], in
/// appearance order. Accepts std::memory_order_X and
/// std::memory_order::X spellings.
std::vector<std::string> spelled_orders(const std::vector<Token>& tokens,
                                        std::size_t first, std::size_t last) {
  static constexpr std::string_view kPrefix = "memory_order_";
  std::vector<std::string> orders;
  for (std::size_t i = first; i <= last && i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent) continue;
    const std::string_view text = tokens[i].text;
    if (text.size() > kPrefix.size() && text.substr(0, kPrefix.size()) == kPrefix) {
      orders.emplace_back(text.substr(kPrefix.size()));
      continue;
    }
    if (text == "memory_order" && i + 2 <= last && tokens[i + 1].text == "::" &&
        tokens[i + 2].kind == Token::Kind::kIdent) {
      orders.emplace_back(tokens[i + 2].text);
      ++i;  // the order ident itself is skipped by the loop increment
    }
  }
  return orders;
}

std::string joined(const std::set<std::string>& orders) {
  std::string text;
  for (const auto& order : orders) {
    if (!text.empty()) text += ",";
    text += order;
  }
  return text.empty() ? "<none>" : text;
}

/// Splits the argument list after '(' (local copy of the shared idiom).
std::size_t split_call_args(
    const std::vector<Token>& tokens, std::size_t open,
    std::vector<std::pair<std::size_t, std::size_t>>& args) {
  std::size_t depth = 1;
  std::size_t start = open + 1;
  std::size_t i = open + 1;
  for (; i < tokens.size(); ++i) {
    const std::string_view text = tokens[i].text;
    if (text == "(" || text == "[" || text == "{") ++depth;
    if (text == ")" || text == "]" || text == "}") {
      if (--depth == 0) break;
    }
    if (text == "," && depth == 1) {
      if (i > start) args.push_back({start, i - 1});
      start = i + 1;
    }
  }
  if (i > start && i < tokens.size()) args.push_back({start, i - 1});
  return i;
}

}  // namespace

void check_atomics(const Config& config, const std::vector<SourceFile>& files,
                   std::vector<Diagnostic>& out) {
  // Pass 1: discipline tables, cross-TU over the subtree.
  std::map<std::string, FieldRule> table;
  for (const auto& file : files) {
    if (!config.in_atomics_tree(file.path())) continue;
    collect_tables(file, table, out);
  }

  // Pass 2: access sites.
  for (const auto& file : files) {
    if (!config.in_atomics_tree(file.path())) continue;
    const std::vector<Token> tokens = tokenize(file);
    for (std::size_t i = 2; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind != Token::Kind::kIdent) continue;
      const auto method = method_ops().find(tokens[i].text);
      if (method == method_ops().end()) continue;
      if (tokens[i - 1].text != "." && tokens[i - 1].text != "->") continue;
      if (tokens[i + 1].text != "(") continue;
      if (tokens[i - 2].kind != Token::Kind::kIdent) continue;
      const std::string field(tokens[i - 2].text);
      const Op op = method->second;
      const std::size_t line = file.line_of(tokens[i].offset);
      const std::string site =
          field + "." + std::string(tokens[i].text) + "()";
      const auto flag = [&](const std::string& message) {
        if (!file.allowed(kCheck, line)) {
          out.push_back({std::string(kCheck), file.path(), line, message});
        }
      };

      std::vector<std::pair<std::size_t, std::size_t>> args;
      split_call_args(tokens, i + 1, args);
      std::vector<std::string> orders;
      if (!args.empty()) {
        orders = spelled_orders(tokens, args.front().first,
                                args.back().second);
      }

      const auto rule = table.find(field);
      if (rule == table.end()) {
        flag("atomic access " + site +
             " has no mocc-atomics discipline row (declare one next to "
             "the field definition)");
        continue;
      }
      if (orders.empty()) {
        flag("implicit seq_cst memory order on " + site +
             " (spell std::memory_order explicitly; the discipline table "
             "is checked against what the code says)");
        continue;
      }

      const auto declared = rule->second.ops.find(op);
      if (declared == rule->second.ops.end()) {
        flag("discipline row for '" + field + "' declares no " +
             std::string(op_name(op)) + " orders, but " + site +
             " is one");
        continue;
      }
      bool bad_order = false;
      if (op == Op::kCas) {
        if (orders.size() != 2) {
          flag(site + " must spell both the success and the failure "
                      "memory order");
          continue;
        }
        if (declared->second.count(orders[0]) == 0) {
          flag("cas success order '" + orders[0] + "' on " + site +
               " is outside the declared set (" + joined(declared->second) +
               ")");
          bad_order = true;
        }
        if (rule->second.cas_failure.count(orders[1]) == 0) {
          flag("cas failure order '" + orders[1] + "' on " + site +
               " is outside the declared set (" +
               joined(rule->second.cas_failure) + ")");
          bad_order = true;
        }
      } else {
        for (const auto& order : orders) {
          if (declared->second.count(order) == 0) {
            flag("memory order '" + order + "' on " + site +
                 " is outside the declared " + std::string(op_name(op)) +
                 " set (" + joined(declared->second) + ")");
            bad_order = true;
          }
        }
      }
      if (bad_order) continue;
      for (const auto& order : orders) {
        if (order == "relaxed" && !file.allowed(kCheck, line)) {
          out.push_back(
              {std::string(kCheck), file.path(), line,
               "relaxed order on " + site +
                   " needs an inline justified allow (// mocc-lint: "
                   "allow(atomics): <why the downgrade is safe>)"});
          break;
        }
      }
    }
  }
}

}  // namespace mocc::lint
