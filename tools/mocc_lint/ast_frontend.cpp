// mocc-lint-ast: clang libTooling frontend for the determinism,
// guarded-by, msg-flow, and atomics checks.
//
// The portable token engine (main.cpp / checks_*.cpp) over-approximates:
// any unordered-container mention needs an allow, and member detection
// rides on the trailing-underscore convention. This frontend runs the
// same checks on the real AST — unordered containers are flagged only
// when their iteration order can escape (range-for / begin()), members
// come from FieldDecls with their actual attributes, message-kind uses
// are real DeclRefExprs classified by their enclosing case label /
// comparison, and implicit memory orders are CXXDefaultArgExprs (which
// the token engine can only infer from a missing argument). It also
// flags atomic operator sugar (++/--/=/implicit conversion), invisible
// to the token scan because overload resolution decides it. The cross-TU
// wire-kind and docs-sync trace-registry checks, the kKindPairs /
// timer-route closure, and the per-field atomics discipline tables stay
// in the token engine, which sees the whole tree (and its comments) at
// once.
//
// Built only under -DMOCC_BUILD_LINT=ON when find_package(Clang) finds a
// development install (headers + libclang-cpp); the default build and
// the self-tests never need it. Usage:
//
//   mocc-lint-ast -p build --mocc-root "$PWD" src/sim/*.cpp ...
//
// Inline `// mocc-lint: allow(...)` suppressions are honored by reusing
// the token engine's SourceFile parser on each file clang visits.
#include <map>
#include <memory>
#include <string>

#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/MemoryBuffer.h"
#include "llvm/Support/Path.h"

#include "lint.hpp"

namespace {

namespace ast = clang::ast_matchers;

llvm::cl::OptionCategory kCategory("mocc-lint-ast options");
llvm::cl::opt<std::string> kRoot(
    "mocc-root", llvm::cl::desc("repo root for subtree filtering"),
    llvm::cl::init("."), llvm::cl::cat(kCategory));

class Reporter {
 public:
  explicit Reporter(mocc::lint::Config config) : config_(std::move(config)) {}

  /// Repo-relative path of `loc`, or "" when the location falls outside
  /// the repo (system headers, builtins).
  std::string relativize(const clang::SourceManager& sm,
                         clang::SourceLocation loc) {
    if (loc.isInvalid()) return {};
    const clang::SourceLocation spelling = sm.getSpellingLoc(loc);
    const llvm::StringRef file = sm.getFilename(spelling);
    if (file.empty()) return {};
    llvm::SmallString<256> absolute(file);
    llvm::sys::fs::make_absolute(absolute);
    llvm::SmallString<256> root(kRoot.getValue());
    llvm::sys::fs::make_absolute(root);
    llvm::StringRef rel(absolute);
    if (!rel.consume_front(root) || !rel.consume_front("/")) return {};
    return rel.str();
  }

  void report(const clang::SourceManager& sm, clang::SourceLocation loc,
              const std::string& check, const std::string& message) {
    const std::string rel = relativize(sm, loc);
    if (rel.empty()) return;
    report_at(rel, sm.getSpellingLineNumber(loc), check, message);
  }

  /// Pre-relativized form, for diagnostics emitted after the tool run
  /// (the msg-flow closure outlives every TU's SourceManager).
  void report_at(const std::string& rel, unsigned line,
                 const std::string& check, const std::string& message) {
    if (rel.empty() || allowed(rel, check, line)) return;
    mocc::lint::Diagnostic diagnostic{check, rel, line, message};
    if (seen_.insert(to_string(diagnostic)).second) {
      llvm::outs() << to_string(diagnostic) << "\n";
      ++count_;
    }
  }

  const mocc::lint::Config& config() const { return config_; }
  unsigned count() const { return count_; }

 private:
  /// Lazily parses the file's suppression comments with the shared
  /// token-engine SourceFile (clang drops comments before matchers run).
  bool allowed(const std::string& rel, const std::string& check,
               unsigned line) {
    auto it = files_.find(rel);
    if (it == files_.end()) {
      llvm::SmallString<256> path(kRoot.getValue());
      llvm::sys::path::append(path, rel);
      auto buffer = llvm::MemoryBuffer::getFile(path);
      const std::string text = buffer ? (*buffer)->getBuffer().str() : "";
      it = files_
               .emplace(rel, mocc::lint::SourceFile::from_string(rel, text))
               .first;
    }
    return it->second.allowed(check, line);
  }

  mocc::lint::Config config_;
  std::map<std::string, mocc::lint::SourceFile> files_;
  std::set<std::string> seen_;
  unsigned count_ = 0;
};

/// determinism: calls of wall-clock / ambient-randomness functions, and
/// iteration over unordered containers, inside the deterministic
/// subtree.
class DeterminismCallback : public ast::MatchFinder::MatchCallback {
 public:
  explicit DeterminismCallback(Reporter& reporter) : reporter_(reporter) {}

  void run(const ast::MatchFinder::MatchResult& result) override {
    const clang::SourceManager& sm = *result.SourceManager;
    if (const auto* call = result.Nodes.getNodeAs<clang::CallExpr>("call")) {
      const auto* callee = call->getDirectCallee();
      if (callee == nullptr) return;
      if (!in_subtree(sm, call->getBeginLoc())) return;
      reporter_.report(sm, call->getBeginLoc(), "determinism",
                       "call of '" + callee->getQualifiedNameAsString() +
                           "' in the deterministic subtree (wall clock / "
                           "ambient randomness breaks byte-identical reruns; "
                           "use the run's seeded util::Rng and virtual time)");
    }
    if (const auto* loop =
            result.Nodes.getNodeAs<clang::CXXForRangeStmt>("loop")) {
      if (!in_subtree(sm, loop->getBeginLoc())) return;
      reporter_.report(sm, loop->getBeginLoc(), "determinism",
                       "range-for over an unordered container in the "
                       "deterministic subtree (iteration order is "
                       "implementation-defined; use std::map/std::set or "
                       "sort at the boundary)");
    }
  }

 private:
  bool in_subtree(const clang::SourceManager& sm, clang::SourceLocation loc) {
    return reporter_.config().in_deterministic_subtree(
        reporter_.relativize(sm, loc));
  }

  Reporter& reporter_;
};

/// guarded-by: fields of mutex-holding records without a guarded_by /
/// pt_guarded_by attribute.
class GuardedByCallback : public ast::MatchFinder::MatchCallback {
 public:
  explicit GuardedByCallback(Reporter& reporter) : reporter_(reporter) {}

  void run(const ast::MatchFinder::MatchResult& result) override {
    const auto* record =
        result.Nodes.getNodeAs<clang::CXXRecordDecl>("record");
    if (record == nullptr || !record->hasDefinition()) return;
    const clang::SourceManager& sm = *result.SourceManager;
    const std::string rel = reporter_.relativize(sm, record->getBeginLoc());
    if (!reporter_.config().in_production_tree(rel)) return;

    bool has_mutex = false;
    for (const auto* field : record->fields()) {
      if (type_name(field).find("mutex") != std::string::npos) {
        has_mutex = true;
        break;
      }
    }
    if (!has_mutex) return;

    for (const auto* field : record->fields()) {
      const std::string type = type_name(field);
      if (type.find("mutex") != std::string::npos) continue;
      if (type.find("atomic") != std::string::npos) continue;
      if (field->getType().isConstQualified()) continue;
      if (field->getType()->isReferenceType()) continue;
      if (field->hasAttr<clang::GuardedByAttr>() ||
          field->hasAttr<clang::PtGuardedByAttr>()) {
        continue;
      }
      reporter_.report(
          sm, field->getLocation(), "guarded-by",
          "mutable member '" + field->getNameAsString() +
              "' of mutex-holding class '" + record->getNameAsString() +
              "' lacks MOCC_GUARDED_BY/MOCC_PT_GUARDED_BY (annotate, or "
              "justify thread confinement with an inline allow)");
    }
  }

 private:
  static std::string type_name(const clang::FieldDecl* field) {
    return field->getType().getCanonicalType().getAsString();
  }

  Reporter& reporter_;
};

/// msg-flow: cross-TU closure of concrete kind constants, from real
/// DeclRefExprs. Collection runs during the AST walk; the closure
/// (emitted-but-unhandled / dead-handler / orphan) is resolved in
/// finish() once every TU has been seen. Kind constants are constexpr
/// variables initialized directly from a <component>_kind() registry
/// helper, exactly the token engine's notion of "concrete".
class MsgFlowCallback : public ast::MatchFinder::MatchCallback {
 public:
  explicit MsgFlowCallback(Reporter& reporter) : reporter_(reporter) {}

  void run(const ast::MatchFinder::MatchResult& result) override {
    const clang::SourceManager& sm = *result.SourceManager;

    if (const auto* decl = result.Nodes.getNodeAs<clang::VarDecl>("kind_decl")) {
      const auto* helper = result.Nodes.getNodeAs<clang::FunctionDecl>("helper");
      if (helper == nullptr) return;
      const std::string rel = reporter_.relativize(sm, decl->getLocation());
      if (rel.empty() || rel == reporter_.config().registry_path) return;
      std::string component = helper->getNameAsString();
      component.resize(component.size() - 5);  // strip "_kind"
      const auto dir = reporter_.config().component_paths.find(component);
      if (dir == reporter_.config().component_paths.end()) return;
      auto& info = kinds_[decl->getNameAsString()];
      if (info.file.empty()) {
        info.file = rel;
        info.line = sm.getSpellingLineNumber(decl->getLocation());
        info.dir = dir->second;
      }
      return;
    }

    // Case labels classify their label ref as a handler use; ==/!=
    // comparisons against a `kind` field do the same. Everything else a
    // kind ref appears in counts as an emission.
    if (const auto* label = result.Nodes.getNodeAs<clang::CaseStmt>("case")) {
      if (const auto* ref = llvm::dyn_cast<clang::DeclRefExpr>(
              label->getLHS()->IgnoreImplicit())) {
        note_use(sm, ref, /*handler=*/true);
      }
      return;
    }
    if (const auto* cmp =
            result.Nodes.getNodeAs<clang::BinaryOperator>("cmp")) {
      const clang::Expr* lhs = cmp->getLHS()->IgnoreImplicit();
      const clang::Expr* rhs = cmp->getRHS()->IgnoreImplicit();
      if (names_kind_field(lhs) || names_kind_field(rhs)) {
        for (const clang::Expr* side : {lhs, rhs}) {
          if (const auto* ref = llvm::dyn_cast<clang::DeclRefExpr>(side)) {
            note_use(sm, ref, /*handler=*/true);
          }
        }
      }
      return;
    }
    if (const auto* ref =
            result.Nodes.getNodeAs<clang::DeclRefExpr>("kind_use")) {
      note_use(sm, ref, /*handler=*/false);
    }
  }

  /// Resolves the closure over everything collected. Decl-site lines are
  /// excluded from the use sets (a header re-included in every TU would
  /// otherwise count its own initializer).
  void finish() {
    for (const auto& [name, info] : kinds_) {
      std::size_t handler_uses = 0;
      std::size_t emit_uses = 0;
      std::string handler_file;
      unsigned handler_line = 0;
      for (const auto& [key, use] : uses_) {
        if (use.name != name) continue;
        if (use.file == info.file && use.line == info.line) continue;
        if (use.handler) {
          if (use.file.rfind(info.dir, 0) == 0) {
            ++handler_uses;
            if (handler_file.empty()) {
              handler_file = use.file;
              handler_line = use.line;
            }
          }
        } else {
          ++emit_uses;
        }
      }
      if (emit_uses > 0 && handler_uses == 0) {
        reporter_.report_at(info.file, info.line, "msg-flow",
                            "kind '" + name +
                                "' is emitted but has no handler in " +
                                info.dir +
                                " (no case label or kind comparison routes "
                                "it)");
      } else if (handler_uses > 0 && emit_uses == 0) {
        reporter_.report_at(handler_file, handler_line, "msg-flow",
                            "dead handler: kind '" + name +
                                "' is handled here but never emitted "
                                "anywhere");
      } else if (handler_uses == 0 && emit_uses == 0) {
        reporter_.report_at(info.file, info.line, "msg-flow",
                            "orphan kind '" + name +
                                "': never emitted and never handled");
      }
    }
  }

 private:
  struct KindInfo {
    std::string file;
    unsigned line = 0;
    std::string dir;
  };
  struct Use {
    std::string name;
    std::string file;
    unsigned line = 0;
    bool handler = false;
  };

  static bool names_kind_field(const clang::Expr* expr) {
    if (const auto* member = llvm::dyn_cast<clang::MemberExpr>(expr)) {
      return member->getMemberDecl()->getName() == "kind";
    }
    if (const auto* ref = llvm::dyn_cast<clang::DeclRefExpr>(expr)) {
      return ref->getDecl()->getName() == "kind";
    }
    return false;
  }

  /// Records one ref, deduplicated by spelling location so headers seen
  /// from many TUs count once. A location classified as a handler stays
  /// one (the generic kind_use matcher also visits it).
  void note_use(const clang::SourceManager& sm, const clang::DeclRefExpr* ref,
                bool handler) {
    const clang::SourceLocation loc = ref->getLocation();
    const std::string rel = reporter_.relativize(sm, loc);
    if (rel.empty() || !reporter_.config().in_production_tree(rel)) return;
    const std::string name = ref->getDecl()->getNameAsString();
    const std::string key = rel + ":" +
                            std::to_string(sm.getSpellingLineNumber(loc)) +
                            ":" +
                            std::to_string(sm.getSpellingColumnNumber(loc)) +
                            ":" + name;
    auto [it, inserted] = uses_.try_emplace(
        key, Use{name, rel, sm.getSpellingLineNumber(loc), handler});
    if (!inserted && handler) it->second.handler = true;
  }

  Reporter& reporter_;
  std::map<std::string, KindInfo> kinds_;
  std::map<std::string, Use> uses_;
};

/// atomics: precise implicit-memory-order detection (a defaulted
/// std::memory_order parameter is a CXXDefaultArgExpr in the AST — no
/// argument counting) plus the operator-sugar forms the token engine
/// cannot see at all. The per-field discipline tables live in comments,
/// so table conformance stays with the token engine.
class AtomicsCallback : public ast::MatchFinder::MatchCallback {
 public:
  explicit AtomicsCallback(Reporter& reporter) : reporter_(reporter) {}

  void run(const ast::MatchFinder::MatchResult& result) override {
    const clang::SourceManager& sm = *result.SourceManager;

    if (const auto* call =
            result.Nodes.getNodeAs<clang::CXXMemberCallExpr>("atomic_call")) {
      if (!in_subtree(sm, call->getExprLoc())) return;
      const auto* callee = call->getMethodDecl();
      if (callee == nullptr) return;
      for (unsigned i = 0; i < call->getNumArgs(); ++i) {
        if (!llvm::isa<clang::CXXDefaultArgExpr>(call->getArg(i))) continue;
        if (i >= callee->getNumParams() ||
            callee->getParamDecl(i)->getType().getAsString().find(
                "memory_order") == std::string::npos) {
          continue;
        }
        reporter_.report(
            sm, call->getExprLoc(), "atomics",
            "implicit seq_cst memory order on '" +
                callee->getNameAsString() +
                "' (spell std::memory_order explicitly; the discipline "
                "table is checked against what the code says)");
        break;
      }
      return;
    }

    const clang::Expr* sugar = nullptr;
    if (const auto* op = result.Nodes.getNodeAs<clang::CXXOperatorCallExpr>(
            "atomic_sugar")) {
      sugar = op;
    } else if (const auto* conv =
                   result.Nodes.getNodeAs<clang::CXXMemberCallExpr>(
                       "atomic_conversion")) {
      sugar = conv;
    }
    if (sugar != nullptr && in_subtree(sm, sugar->getExprLoc())) {
      reporter_.report(
          sm, sugar->getExprLoc(), "atomics",
          "operator access on a std::atomic (++/--/=/implicit conversion) "
          "bypasses the explicit-memory-order methods; use "
          "load/store/fetch_* with a spelled order");
    }
  }

 private:
  bool in_subtree(const clang::SourceManager& sm, clang::SourceLocation loc) {
    return reporter_.config().in_atomics_tree(reporter_.relativize(sm, loc));
  }

  Reporter& reporter_;
};

}  // namespace

int main(int argc, const char** argv) {
  auto options =
      clang::tooling::CommonOptionsParser::create(argc, argv, kCategory);
  if (!options) {
    llvm::errs() << llvm::toString(options.takeError());
    return 2;
  }
  clang::tooling::ClangTool tool(options->getCompilations(),
                                 options->getSourcePathList());

  Reporter reporter(mocc::lint::Config::repo_default());
  DeterminismCallback determinism(reporter);
  GuardedByCallback guarded_by(reporter);
  MsgFlowCallback msg_flow(reporter);
  AtomicsCallback atomics(reporter);

  ast::MatchFinder finder;
  finder.addMatcher(
      ast::callExpr(
          ast::callee(ast::functionDecl(ast::hasAnyName(
              "::std::chrono::system_clock::now",
              "::std::chrono::steady_clock::now",
              "::std::chrono::high_resolution_clock::now", "::std::rand",
              "::std::srand", "::std::time", "::rand", "::srand", "::time",
              "::gettimeofday", "::clock_gettime", "::clock", "::localtime",
              "::gmtime", "::timespec_get"))))
          .bind("call"),
      &determinism);
  finder.addMatcher(
      ast::cxxForRangeStmt(
          ast::hasRangeInit(ast::expr(ast::hasType(ast::hasUnqualifiedDesugaredType(
              ast::recordType(ast::hasDeclaration(ast::namedDecl(ast::hasAnyName(
                  "::std::unordered_map", "::std::unordered_set",
                  "::std::unordered_multimap", "::std::unordered_multiset")))))))))
          .bind("loop"),
      &determinism);
  finder.addMatcher(ast::cxxRecordDecl(ast::isDefinition()).bind("record"),
                    &guarded_by);

  // msg-flow: concrete kind constants (constexpr vars initialized from a
  // *_kind registry helper), their refs, and the handler contexts.
  const auto kind_helper = ast::functionDecl(ast::matchesName("_kind$"));
  const auto kind_var = ast::varDecl(
      ast::isConstexpr(),
      ast::hasInitializer(ast::ignoringImplicit(
          ast::callExpr(ast::callee(kind_helper)))));
  finder.addMatcher(
      ast::varDecl(ast::isConstexpr(),
                   ast::hasInitializer(ast::ignoringImplicit(ast::callExpr(
                       ast::callee(kind_helper.bind("helper"))))))
          .bind("kind_decl"),
      &msg_flow);
  finder.addMatcher(ast::declRefExpr(ast::to(kind_var)).bind("kind_use"),
                    &msg_flow);
  finder.addMatcher(ast::caseStmt().bind("case"), &msg_flow);
  finder.addMatcher(
      ast::binaryOperator(ast::hasAnyOperatorName("==", "!=")).bind("cmp"),
      &msg_flow);

  // atomics: explicit-order methods (for defaulted memory_order args)
  // and the operator sugar that skips them entirely.
  const auto atomic_class = ast::cxxRecordDecl(ast::hasAnyName(
      "::std::atomic", "::std::__atomic_base", "::std::atomic_flag"));
  finder.addMatcher(
      ast::cxxMemberCallExpr(
          ast::callee(ast::cxxMethodDecl(
              ast::ofClass(atomic_class),
              ast::hasAnyName("load", "store", "exchange", "fetch_add",
                              "fetch_sub", "fetch_and", "fetch_or",
                              "fetch_xor", "compare_exchange_strong",
                              "compare_exchange_weak"))))
          .bind("atomic_call"),
      &atomics);
  finder.addMatcher(
      ast::cxxOperatorCallExpr(
          ast::callee(ast::cxxMethodDecl(ast::ofClass(atomic_class))))
          .bind("atomic_sugar"),
      &atomics);
  finder.addMatcher(
      ast::cxxMemberCallExpr(
          ast::callee(ast::cxxConversionDecl(ast::ofClass(atomic_class))))
          .bind("atomic_conversion"),
      &atomics);

  const int status =
      tool.run(clang::tooling::newFrontendActionFactory(&finder).get());
  if (status != 0) return status;
  msg_flow.finish();
  if (reporter.count() == 0) {
    llvm::errs() << "mocc-lint-ast: clean\n";
    return 0;
  }
  llvm::errs() << "mocc-lint-ast: " << reporter.count() << " diagnostic(s)\n";
  return 1;
}
