// mocc-lint-ast: clang libTooling frontend for the determinism and
// guarded-by checks.
//
// The portable token engine (main.cpp / checks_*.cpp) over-approximates:
// any unordered-container mention needs an allow, and member detection
// rides on the trailing-underscore convention. This frontend runs the
// same two checks on the real AST — unordered containers are flagged
// only when their iteration order can escape (range-for / begin()), and
// members come from FieldDecls with their actual attributes — so its
// diagnostics are a strict subset. The cross-TU wire-kind and docs-sync
// trace-registry checks stay in the token engine, which sees the whole
// tree at once.
//
// Built only under -DMOCC_BUILD_LINT=ON when find_package(Clang) finds a
// development install (headers + libclang-cpp); the default build and
// the self-tests never need it. Usage:
//
//   mocc-lint-ast -p build --mocc-root "$PWD" src/sim/*.cpp ...
//
// Inline `// mocc-lint: allow(...)` suppressions are honored by reusing
// the token engine's SourceFile parser on each file clang visits.
#include <map>
#include <memory>
#include <string>

#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/MemoryBuffer.h"
#include "llvm/Support/Path.h"

#include "lint.hpp"

namespace {

namespace ast = clang::ast_matchers;

llvm::cl::OptionCategory kCategory("mocc-lint-ast options");
llvm::cl::opt<std::string> kRoot(
    "mocc-root", llvm::cl::desc("repo root for subtree filtering"),
    llvm::cl::init("."), llvm::cl::cat(kCategory));

class Reporter {
 public:
  explicit Reporter(mocc::lint::Config config) : config_(std::move(config)) {}

  /// Repo-relative path of `loc`, or "" when the location falls outside
  /// the repo (system headers, builtins).
  std::string relativize(const clang::SourceManager& sm,
                         clang::SourceLocation loc) {
    if (loc.isInvalid()) return {};
    const clang::SourceLocation spelling = sm.getSpellingLoc(loc);
    const llvm::StringRef file = sm.getFilename(spelling);
    if (file.empty()) return {};
    llvm::SmallString<256> absolute(file);
    llvm::sys::fs::make_absolute(absolute);
    llvm::SmallString<256> root(kRoot.getValue());
    llvm::sys::fs::make_absolute(root);
    llvm::StringRef rel(absolute);
    if (!rel.consume_front(root) || !rel.consume_front("/")) return {};
    return rel.str();
  }

  void report(const clang::SourceManager& sm, clang::SourceLocation loc,
              const std::string& check, const std::string& message) {
    const std::string rel = relativize(sm, loc);
    if (rel.empty()) return;
    const unsigned line = sm.getSpellingLineNumber(loc);
    if (allowed(rel, check, line)) return;
    mocc::lint::Diagnostic diagnostic{check, rel, line, message};
    if (seen_.insert(to_string(diagnostic)).second) {
      llvm::outs() << to_string(diagnostic) << "\n";
      ++count_;
    }
  }

  const mocc::lint::Config& config() const { return config_; }
  unsigned count() const { return count_; }

 private:
  /// Lazily parses the file's suppression comments with the shared
  /// token-engine SourceFile (clang drops comments before matchers run).
  bool allowed(const std::string& rel, const std::string& check,
               unsigned line) {
    auto it = files_.find(rel);
    if (it == files_.end()) {
      llvm::SmallString<256> path(kRoot.getValue());
      llvm::sys::path::append(path, rel);
      auto buffer = llvm::MemoryBuffer::getFile(path);
      const std::string text = buffer ? (*buffer)->getBuffer().str() : "";
      it = files_
               .emplace(rel, mocc::lint::SourceFile::from_string(rel, text))
               .first;
    }
    return it->second.allowed(check, line);
  }

  mocc::lint::Config config_;
  std::map<std::string, mocc::lint::SourceFile> files_;
  std::set<std::string> seen_;
  unsigned count_ = 0;
};

/// determinism: calls of wall-clock / ambient-randomness functions, and
/// iteration over unordered containers, inside the deterministic
/// subtree.
class DeterminismCallback : public ast::MatchFinder::MatchCallback {
 public:
  explicit DeterminismCallback(Reporter& reporter) : reporter_(reporter) {}

  void run(const ast::MatchFinder::MatchResult& result) override {
    const clang::SourceManager& sm = *result.SourceManager;
    if (const auto* call = result.Nodes.getNodeAs<clang::CallExpr>("call")) {
      const auto* callee = call->getDirectCallee();
      if (callee == nullptr) return;
      if (!in_subtree(sm, call->getBeginLoc())) return;
      reporter_.report(sm, call->getBeginLoc(), "determinism",
                       "call of '" + callee->getQualifiedNameAsString() +
                           "' in the deterministic subtree (wall clock / "
                           "ambient randomness breaks byte-identical reruns; "
                           "use the run's seeded util::Rng and virtual time)");
    }
    if (const auto* loop =
            result.Nodes.getNodeAs<clang::CXXForRangeStmt>("loop")) {
      if (!in_subtree(sm, loop->getBeginLoc())) return;
      reporter_.report(sm, loop->getBeginLoc(), "determinism",
                       "range-for over an unordered container in the "
                       "deterministic subtree (iteration order is "
                       "implementation-defined; use std::map/std::set or "
                       "sort at the boundary)");
    }
  }

 private:
  bool in_subtree(const clang::SourceManager& sm, clang::SourceLocation loc) {
    return reporter_.config().in_deterministic_subtree(
        reporter_.relativize(sm, loc));
  }

  Reporter& reporter_;
};

/// guarded-by: fields of mutex-holding records without a guarded_by /
/// pt_guarded_by attribute.
class GuardedByCallback : public ast::MatchFinder::MatchCallback {
 public:
  explicit GuardedByCallback(Reporter& reporter) : reporter_(reporter) {}

  void run(const ast::MatchFinder::MatchResult& result) override {
    const auto* record =
        result.Nodes.getNodeAs<clang::CXXRecordDecl>("record");
    if (record == nullptr || !record->hasDefinition()) return;
    const clang::SourceManager& sm = *result.SourceManager;
    const std::string rel = reporter_.relativize(sm, record->getBeginLoc());
    if (!reporter_.config().in_production_tree(rel)) return;

    bool has_mutex = false;
    for (const auto* field : record->fields()) {
      if (type_name(field).find("mutex") != std::string::npos) {
        has_mutex = true;
        break;
      }
    }
    if (!has_mutex) return;

    for (const auto* field : record->fields()) {
      const std::string type = type_name(field);
      if (type.find("mutex") != std::string::npos) continue;
      if (type.find("atomic") != std::string::npos) continue;
      if (field->getType().isConstQualified()) continue;
      if (field->getType()->isReferenceType()) continue;
      if (field->hasAttr<clang::GuardedByAttr>() ||
          field->hasAttr<clang::PtGuardedByAttr>()) {
        continue;
      }
      reporter_.report(
          sm, field->getLocation(), "guarded-by",
          "mutable member '" + field->getNameAsString() +
              "' of mutex-holding class '" + record->getNameAsString() +
              "' lacks MOCC_GUARDED_BY/MOCC_PT_GUARDED_BY (annotate, or "
              "justify thread confinement with an inline allow)");
    }
  }

 private:
  static std::string type_name(const clang::FieldDecl* field) {
    return field->getType().getCanonicalType().getAsString();
  }

  Reporter& reporter_;
};

}  // namespace

int main(int argc, const char** argv) {
  auto options =
      clang::tooling::CommonOptionsParser::create(argc, argv, kCategory);
  if (!options) {
    llvm::errs() << llvm::toString(options.takeError());
    return 2;
  }
  clang::tooling::ClangTool tool(options->getCompilations(),
                                 options->getSourcePathList());

  Reporter reporter(mocc::lint::Config::repo_default());
  DeterminismCallback determinism(reporter);
  GuardedByCallback guarded_by(reporter);

  ast::MatchFinder finder;
  finder.addMatcher(
      ast::callExpr(
          ast::callee(ast::functionDecl(ast::hasAnyName(
              "::std::chrono::system_clock::now",
              "::std::chrono::steady_clock::now",
              "::std::chrono::high_resolution_clock::now", "::std::rand",
              "::std::srand", "::std::time", "::rand", "::srand", "::time",
              "::gettimeofday", "::clock_gettime", "::clock", "::localtime",
              "::gmtime", "::timespec_get"))))
          .bind("call"),
      &determinism);
  finder.addMatcher(
      ast::cxxForRangeStmt(
          ast::hasRangeInit(ast::expr(ast::hasType(ast::hasUnqualifiedDesugaredType(
              ast::recordType(ast::hasDeclaration(ast::namedDecl(ast::hasAnyName(
                  "::std::unordered_map", "::std::unordered_set",
                  "::std::unordered_multimap", "::std::unordered_multiset")))))))))
          .bind("loop"),
      &determinism);
  finder.addMatcher(ast::cxxRecordDecl(ast::isDefinition()).bind("record"),
                    &guarded_by);

  const int status =
      tool.run(clang::tooling::newFrontendActionFactory(&finder).get());
  if (status != 0) return status;
  if (reporter.count() == 0) {
    llvm::errs() << "mocc-lint-ast: clean\n";
    return 0;
  }
  llvm::errs() << "mocc-lint-ast: " << reporter.count() << " diagnostic(s)\n";
  return 1;
}
