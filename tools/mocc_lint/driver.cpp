// Driver: file discovery (compilation database + header walk), tree
// loading, and the check dispatcher shared by the CLI and the
// self-tests.
#include "lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace mocc::lint {

namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool has_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

/// Repo-relative, '/'-separated form of `path` under `root`; empty when
/// the file lies outside the root.
std::string relativize(const fs::path& root, const fs::path& path) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty()) return {};
  const std::string s = rel.generic_string();
  if (s.rfind("..", 0) == 0) return {};
  return s;
}

/// Pulls the "file" entries out of compile_commands.json. The format is
/// fixed (CMake emits an array of objects with directory/command/file),
/// so a targeted scan beats dragging in a JSON parser.
std::vector<std::string> compdb_files(const std::string& json,
                                      const fs::path& root) {
  std::vector<std::string> files;
  static constexpr std::string_view kKey = "\"file\"";
  std::size_t pos = json.find(kKey);
  while (pos != std::string::npos) {
    std::size_t i = pos + kKey.size();
    while (i < json.size() && (json[i] == ' ' || json[i] == ':')) ++i;
    if (i < json.size() && json[i] == '"') {
      const std::size_t end = json.find('"', i + 1);
      if (end != std::string::npos) {
        const std::string rel =
            relativize(root, fs::path(json.substr(i + 1, end - i - 1)));
        if (!rel.empty()) files.push_back(rel);
      }
    }
    pos = json.find(kKey, pos + kKey.size());
  }
  return files;
}

bool in_scanned_tree(std::string_view rel) {
  return rel.rfind("src/", 0) == 0 || rel.rfind("bench/", 0) == 0;
}

}  // namespace

std::vector<std::string> discover_files(const RunOptions& options) {
  const fs::path root =
      options.repo_root.empty() ? fs::path(".") : fs::path(options.repo_root);
  std::vector<std::string> files;

  // Translation units, from the compilation database when one exists.
  fs::path compdb = options.compdb_path.empty()
                        ? root / "build" / "compile_commands.json"
                        : fs::path(options.compdb_path);
  if (fs::exists(compdb)) {
    for (std::string& rel : compdb_files(slurp(compdb), root)) {
      if (in_scanned_tree(rel)) files.push_back(std::move(rel));
    }
  }

  // Headers never appear in the database; walk src/ and bench/ for them
  // (and for sources too when there was no database at all).
  for (const char* top : {"src", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !has_extension(entry.path())) continue;
      const std::string rel = relativize(root, entry.path());
      if (!rel.empty()) files.push_back(rel);
    }
  }

  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<Diagnostic> run_checks(const Config& config,
                                   const std::vector<SourceFile>& files,
                                   const std::string& docs_text,
                                   const std::set<std::string>& checks) {
  const auto enabled = [&](std::string_view check) {
    return checks.empty() || checks.count(std::string(check)) != 0;
  };
  std::vector<Diagnostic> out;
  for (const auto& file : files) {
    if (enabled("suppression")) {
      const auto& meta = file.suppression_diagnostics();
      out.insert(out.end(), meta.begin(), meta.end());
    }
    if (enabled("determinism")) check_determinism(config, file, out);
    if (enabled("guarded-by")) check_guarded_by(config, file, out);
    if (enabled("sched-hook")) check_sched_hook(config, file, out);
  }
  if (enabled("wire-kind")) check_wire_kind(config, files, out);
  if (enabled("msg-flow")) check_msg_flow(config, files, out);
  if (enabled("atomics")) check_atomics(config, files, out);
  if (enabled("trace-registry")) {
    check_trace_registry(config, files, docs_text, out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void check_compdb(const RunOptions& options, std::vector<Diagnostic>& out) {
  const fs::path root =
      options.repo_root.empty() ? fs::path(".") : fs::path(options.repo_root);
  const fs::path compdb = options.compdb_path.empty()
                              ? root / "build" / "compile_commands.json"
                              : fs::path(options.compdb_path);
  // No database: the filesystem walk already covers everything the
  // token engine needs, and there is no AST scan to narrow.
  if (!fs::exists(compdb)) return;
  const std::vector<std::string> listed_vec = compdb_files(slurp(compdb), root);
  const std::set<std::string> listed(listed_vec.begin(), listed_vec.end());

  // Sources on disk but missing from the database: an AST-frontend run
  // driven by the database would silently skip them.
  for (const char* top : {"src", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".cc") continue;
      const std::string rel = relativize(root, entry.path());
      if (rel.empty() || listed.count(rel) != 0) continue;
      out.push_back({"compdb", rel, 1,
                     "source is not listed in compile_commands.json — the "
                     "database is stale and would narrow the AST scan "
                     "(re-run cmake to regenerate it)"});
    }
  }
  // Entries whose source no longer exists: a renamed or deleted file the
  // database still points at.
  for (const std::string& rel : listed) {
    if (!in_scanned_tree(rel)) continue;
    if (fs::exists(root / rel)) continue;
    out.push_back({"compdb", rel, 1,
                   "compile_commands.json lists this source but it no "
                   "longer exists (stale database; re-run cmake)"});
  }
}

std::vector<Diagnostic> run_lint(const RunOptions& options) {
  const fs::path root =
      options.repo_root.empty() ? fs::path(".") : fs::path(options.repo_root);
  const Config config = Config::repo_default();

  std::vector<SourceFile> files;
  for (const std::string& rel : discover_files(options)) {
    files.push_back(SourceFile::from_string(rel, slurp(root / rel)));
  }
  const std::string docs = slurp(root / config.trace_docs_path);
  std::vector<Diagnostic> out =
      run_checks(config, files, docs, options.checks);
  if (options.checks.empty() || options.checks.count("compdb") != 0) {
    check_compdb(options, out);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

}  // namespace mocc::lint
