// mocc-lint: project-specific static checks for the mocc tree.
//
// The repo's determinism guarantees (byte-identical simulator reruns,
// golden bench artifacts, seed-reproducible chaos sweeps) rest on
// conventions no general-purpose tool checks. mocc-lint turns them into
// an enforced contract:
//
//   determinism     — no wall clock, no ambient randomness, and no
//                     unordered containers inside the deterministic
//                     subtree (src/sim, src/abcast, src/protocols,
//                     src/fault, src/obs, src/txn, bench/experiments.cpp).
//   wire-kind       — every message-kind constant derives from the
//                     central registry (src/sim/wire_kinds.hpp), stays
//                     inside its component's declared range, is defined
//                     in its component's directory, and collides with no
//                     other kind across translation units. Send sites
//                     must not pass raw integer kinds.
//   guarded-by      — every mutable data member of a mutex-holding class
//                     carries MOCC_GUARDED_BY / MOCC_PT_GUARDED_BY (the
//                     classes sim::ParallelRunner fans work over are
//                     exactly the mutex-holding ones).
//   sched-hook      — protocol-layer code (src/abcast, src/protocols,
//                     src/fault) introduces no scheduling decision the
//                     ScheduleController cannot see: every event enters
//                     the simulator through the send seam, never by
//                     direct queue pushes (schedule_call / post). The
//                     mocc-check explorer's exhaustiveness claim is only
//                     as strong as this routing invariant.
//   trace-registry  — TraceEvent name literals live only in the
//                     obs::to_string registry, cover the enum exactly,
//                     and stay in sync with docs/observability.md.
//   msg-flow        — cross-TU closure of the message graph: every
//                     emitted kind has a handler in its component's
//                     directory, every handled kind has an emitter
//                     (dead-handler detection), request/response pairs
//                     declared in the registry's kKindPairs table stay
//                     closed, and every timer id passed to set_timer()
//                     has an on_timer route.
//   atomics         — inside atomics_paths (src/exec/ and any future
//                     lock-free subtree) every atomic access spells an
//                     explicit std::memory_order drawn from a per-field
//                     `// mocc-atomics:` discipline table; relaxed
//                     additionally needs an inline justified allow.
//   compdb          — compile_commands.json freshness: sources on disk
//                     but missing from the database (or listed but
//                     deleted) fail loudly instead of silently
//                     narrowing the AST frontend's scan.
//
// Escape hatch (inline, justification required):
//   // mocc-lint: allow(<check>): <why this site is safe>
// on the flagged line, or alone on the line above it. Region form for a
// block of members / statements:
//   // mocc-lint: allow-begin(<check>): <why>
//   ...
//   // mocc-lint: allow-end(<check>)
//
// Two frontends share this engine. The portable token-level frontend
// (this header + checks_*.cpp) builds everywhere with no dependencies
// and is what the ctest self-tests exercise; it over-approximates
// (e.g. any unordered-container mention needs an allow, not just
// iteration). The clang libTooling frontend (ast_frontend.cpp, built
// under MOCC_BUILD_LINT=ON when a Clang development install is found)
// re-implements the determinism and guarded-by checks on the real AST
// and defers the cross-TU / docs checks to this engine.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace mocc::lint {

/// Check identifiers accepted by the allow() escape hatch. "suppression"
/// names the meta-check that validates the escape hatches themselves.
inline constexpr std::string_view kCheckNames[] = {
    "determinism", "wire-kind", "guarded-by",      "sched-hook",
    "msg-flow",    "atomics",   "trace-registry",  "compdb",
    "suppression"};

bool is_known_check(std::string_view name);

struct Diagnostic {
  std::string check;    ///< one of kCheckNames
  std::string file;     ///< repo-relative path, '/'-separated
  std::size_t line = 0; ///< 1-based
  std::string message;
};

bool operator<(const Diagnostic& a, const Diagnostic& b);
bool operator==(const Diagnostic& a, const Diagnostic& b);

/// "file:line: check: message" (the gcc-style form editors jump to).
std::string to_string(const Diagnostic& diagnostic);

/// One scanned file: the raw text, a masked copy where comment and
/// string-literal bytes are blanked (newlines preserved, so offsets and
/// line numbers agree), the string literals that were masked out, and
/// the mocc-lint suppression directives found in comments.
class SourceFile {
 public:
  /// Parses `text` (C++ lexing rules: //, /*...*/, "...", '...',
  /// raw strings, digit separators). `path` is stored verbatim.
  static SourceFile from_string(std::string path, std::string text);

  const std::string& path() const { return path_; }
  const std::string& text() const { return text_; }
  const std::string& code() const { return code_; }

  std::size_t num_lines() const { return line_starts_.size(); }
  /// 1-based line containing byte `offset`.
  std::size_t line_of(std::size_t offset) const;

  struct Literal {
    std::size_t offset = 0;  ///< of the opening quote
    std::string value;       ///< raw contents between the quotes
  };
  const std::vector<Literal>& string_literals() const { return literals_; }

  /// True when `line` is covered by an allow() or allow-begin/end region
  /// for `check`.
  bool allowed(std::string_view check, std::size_t line) const;

  /// Problems with the suppression directives themselves (unknown check
  /// name, missing justification, unbalanced region).
  const std::vector<Diagnostic>& suppression_diagnostics() const {
    return suppression_diagnostics_;
  }

 private:
  void index_lines();
  void mask();  // fills code_, literals_, suppressions
  void parse_directives(std::size_t comment_offset, std::string_view comment);
  void finalize_regions();

  std::string path_;
  std::string text_;
  std::string code_;
  std::vector<std::size_t> line_starts_;
  std::vector<Literal> literals_;
  /// check -> lines explicitly allowed
  std::map<std::string, std::set<std::size_t>, std::less<>> allow_lines_;
  /// check -> [begin, end] line regions
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>,
           std::less<>>
      allow_regions_;
  /// check -> open begin lines (closed by finalize/end)
  std::map<std::string, std::vector<std::size_t>, std::less<>> open_regions_;
  std::vector<Diagnostic> suppression_diagnostics_;
};

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string_view text;   ///< view into SourceFile::code()
  std::size_t offset = 0;
};

/// Lexes the masked code: identifiers, numbers, and punctuation (with
/// "::" "->" "//"-free, multi-char operators folded where the checks
/// care: "::" and "->" are single tokens).
std::vector<Token> tokenize(const SourceFile& file);

/// A component's reserved kind range, parsed from the registry header.
struct KindRange {
  std::string component;
  std::uint32_t first = 0;
  std::uint32_t last = 0;
};

struct Config {
  /// Repo-relative prefixes (directories end with '/') that form the
  /// deterministic subtree.
  std::vector<std::string> deterministic_paths;
  /// component name -> repo-relative directory its kind constants must
  /// live in (components absent here may define kinds anywhere).
  std::map<std::string, std::string> component_paths;
  /// Paths (repo-relative) under which the wire-kind send-site and
  /// guarded-by checks apply.
  std::vector<std::string> production_paths;
  /// Paths whose code must route every simulator event through the
  /// ScheduleController seam (the sched-hook check).
  std::vector<std::string> sched_hook_paths;
  /// Lock-free subtrees where every atomic access must spell an explicit
  /// std::memory_order matching a declared `// mocc-atomics:` discipline
  /// row (the atomics check).
  std::vector<std::string> atomics_paths;
  std::string registry_path;      ///< src/sim/wire_kinds.hpp
  std::string trace_header_path;  ///< src/obs/trace.hpp
  std::string trace_source_path;  ///< src/obs/trace.cpp
  std::string trace_docs_path;    ///< docs/observability.md

  /// The configuration the mocc tree is linted with.
  static Config repo_default();

  bool in_deterministic_subtree(std::string_view path) const;
  bool in_production_tree(std::string_view path) const;
  bool in_sched_hook_tree(std::string_view path) const;
  bool in_atomics_tree(std::string_view path) const;
};

// --- Checks (portable token engine) ---------------------------------

/// Wall clock, ambient randomness, unordered containers.
void check_determinism(const Config& config, const SourceFile& file,
                       std::vector<Diagnostic>& out);

/// GUARDED_BY coverage of mutex-holding classes.
void check_guarded_by(const Config& config, const SourceFile& file,
                      std::vector<Diagnostic>& out);

/// Direct simulator queue pushes (schedule_call, member post()) inside
/// sched_hook_paths — events the ScheduleController never sees.
void check_sched_hook(const Config& config, const SourceFile& file,
                      std::vector<Diagnostic>& out);

/// Registry derivation, ranges, directories, cross-TU collisions, raw
/// send-site kinds. Needs every file at once (cross-TU).
void check_wire_kind(const Config& config, const std::vector<SourceFile>& files,
                     std::vector<Diagnostic>& out);

/// Enum/to_string/docs three-way sync plus stray name literals.
/// `docs_text` is the raw markdown (empty = docs file missing, which is
/// itself diagnosed).
void check_trace_registry(const Config& config,
                          const std::vector<SourceFile>& files,
                          const std::string& docs_text,
                          std::vector<Diagnostic>& out);

/// Message-flow closure over the concrete kind constants: unhandled
/// emitted kinds, dead handlers, orphan kinds, open request/response
/// pairs (registry kKindPairs table), and scheduled timer ids with no
/// on_timer route. Needs every file at once (cross-TU).
void check_msg_flow(const Config& config, const std::vector<SourceFile>& files,
                    std::vector<Diagnostic>& out);

/// Atomics publication discipline inside atomics_paths: implicit
/// (defaulted seq_cst) orders, accesses to fields without a
/// `// mocc-atomics:` discipline row, orders outside the declared set,
/// and relaxed sites lacking a justified allow. Discipline tables are
/// collected cross-TU (declared next to the field, checked at every
/// access site in the subtree).
void check_atomics(const Config& config, const std::vector<SourceFile>& files,
                   std::vector<Diagnostic>& out);

/// Parses the kKindRanges table out of the registry header's masked
/// code. Returns std::nullopt (and appends a diagnostic) when the table
/// is missing or malformed (empty, unsorted, overlapping).
std::optional<std::vector<KindRange>> parse_kind_ranges(
    const SourceFile& registry, std::vector<Diagnostic>& out);

// --- Driver ----------------------------------------------------------

struct RunOptions {
  std::string repo_root;    ///< absolute or relative path to the tree
  std::string compdb_path;  ///< compile_commands.json; "" = auto-detect
  std::set<std::string> checks;  ///< empty = every check
};

/// Translation units from the compilation database (restricted to the
/// repo's src/ and bench/) unioned with every header under src/ and
/// bench/. Sorted, repo-relative. Falls back to a filesystem walk when
/// no database is found.
std::vector<std::string> discover_files(const RunOptions& options);

/// Compilation-database freshness guard: when a database exists, every
/// .cpp/.cc on disk under src/ and bench/ must be listed in it and every
/// listed source must still exist. A stale database would silently
/// narrow the AST frontend's scan (the token engine walks the
/// filesystem and is immune). No database at all is not a finding.
void check_compdb(const RunOptions& options, std::vector<Diagnostic>& out);

/// Loads, scans, and checks the tree; returns sorted diagnostics.
std::vector<Diagnostic> run_lint(const RunOptions& options);

/// Runs every check over in-memory sources (the self-test entry point;
/// no filesystem access). `docs_text` feeds trace-registry.
std::vector<Diagnostic> run_checks(const Config& config,
                                   const std::vector<SourceFile>& files,
                                   const std::string& docs_text,
                                   const std::set<std::string>& checks);

}  // namespace mocc::lint
