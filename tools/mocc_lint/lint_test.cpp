// Self-tests for the mocc-lint portable engine: fixture snippets per
// check (positive and negative), the allow escape hatch, the suppression
// meta-check, and a full scan of the real tree (which must be clean).
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace mocc::lint {
namespace {

/// Fixture configuration: everything under src/ is deterministic, two
/// registered components alpha [10,19] and beta [20,29] with pinned
/// directories.
Config test_config() {
  Config config;
  config.deterministic_paths = {"src/"};
  config.component_paths = {{"alpha", "src/alpha/"}, {"beta", "src/beta/"}};
  config.production_paths = {"src/", "bench/"};
  config.sched_hook_paths = {"src/proto/"};
  config.atomics_paths = {"src/lockfree/"};
  config.registry_path = "src/wire_kinds.hpp";
  config.trace_header_path = "src/trace.hpp";
  config.trace_source_path = "src/trace.cpp";
  config.trace_docs_path = "docs/obs.md";
  return config;
}

const char* const kRegistry = R"cpp(
struct KindRange { const char* component; unsigned first; unsigned last; };
inline constexpr KindRange kKindRanges[] = {
    {"alpha", 10, 19},
    {"beta", 20, 29},
};
)cpp";

SourceFile make(std::string path, std::string text) {
  return SourceFile::from_string(std::move(path), std::move(text));
}

std::vector<Diagnostic> of_check(const std::vector<Diagnostic>& diagnostics,
                                 std::string_view check) {
  std::vector<Diagnostic> filtered;
  for (const auto& d : diagnostics) {
    if (d.check == check) filtered.push_back(d);
  }
  return filtered;
}

// --- SourceFile / masking --------------------------------------------

TEST(SourceFileTest, MasksCommentsAndStringsPreservingLines) {
  const SourceFile file = make("src/a.cpp",
                               "int a; // unordered_map in a comment\n"
                               "const char* s = \"system_clock\";\n"
                               "int b;\n");
  EXPECT_EQ(file.code().size(), file.text().size());
  EXPECT_EQ(file.code().find("unordered_map"), std::string::npos);
  EXPECT_EQ(file.code().find("system_clock"), std::string::npos);
  ASSERT_EQ(file.string_literals().size(), 1u);
  EXPECT_EQ(file.string_literals()[0].value, "system_clock");
  EXPECT_EQ(file.line_of(file.code().find("int b")), 3u);
}

TEST(SourceFileTest, HandlesRawStringsAndDigitSeparators) {
  const SourceFile file = make("src/a.cpp",
                               "auto s = R\"x(rand() \"quoted\")x\";\n"
                               "int n = 1'000'000;\n");
  EXPECT_EQ(file.code().find("rand"), std::string::npos);
  ASSERT_EQ(file.string_literals().size(), 1u);
  EXPECT_EQ(file.string_literals()[0].value, "rand() \"quoted\"");
  EXPECT_NE(file.code().find("1'000'000"), std::string::npos);
}

TEST(SourceFileTest, AllowCoversItsLineAndTheNextWhenStandalone) {
  const SourceFile file = make("src/a.cpp",
                               "// mocc-lint: allow(determinism): memo only\n"
                               "int covered;\n"
                               "int uncovered;\n"
                               "int trailing; // mocc-lint: allow(wire-kind): raw on purpose\n");
  EXPECT_TRUE(file.allowed("determinism", 1));
  EXPECT_TRUE(file.allowed("determinism", 2));
  EXPECT_FALSE(file.allowed("determinism", 3));
  EXPECT_TRUE(file.allowed("wire-kind", 4));
  EXPECT_FALSE(file.allowed("wire-kind", 5));  // trailing comment: no spill
  EXPECT_TRUE(file.suppression_diagnostics().empty());
}

TEST(SourceFileTest, AllowRegionsCoverTheEnclosedLines) {
  const SourceFile file = make("src/a.cpp",
                               "// mocc-lint: allow-begin(guarded-by): confined to the sim thread\n"
                               "int a_;\n"
                               "int b_;\n"
                               "// mocc-lint: allow-end(guarded-by)\n"
                               "int c_;\n");
  EXPECT_TRUE(file.allowed("guarded-by", 2));
  EXPECT_TRUE(file.allowed("guarded-by", 3));
  EXPECT_FALSE(file.allowed("guarded-by", 5));
  EXPECT_TRUE(file.suppression_diagnostics().empty());
}

TEST(SuppressionTest, BadDirectivesAreDiagnosed) {
  const SourceFile file = make(
      "src/a.cpp",
      "// mocc-lint: allow(determinism)\n"            // no justification
      "// mocc-lint: allow(bogus): some reason\n"     // unknown check
      "// mocc-lint: allow-end(determinism)\n"        // unmatched end
      "// mocc-lint: allow-begin(wire-kind): why\n"); // never closed
  const auto& meta = file.suppression_diagnostics();
  ASSERT_EQ(meta.size(), 4u);
  EXPECT_NE(meta[0].message.find("justification"), std::string::npos);
  EXPECT_NE(meta[1].message.find("bogus"), std::string::npos);
  EXPECT_NE(meta[2].message.find("without a matching begin"),
            std::string::npos);
  EXPECT_NE(meta[3].message.find("never closed"), std::string::npos);
}

// --- determinism ------------------------------------------------------

TEST(DeterminismTest, FlagsClockRandomnessAndUnorderedContainers) {
  const SourceFile file = make("src/a.cpp",
                               "auto t = std::chrono::system_clock::now();\n"
                               "int r = std::rand();\n"
                               "std::unordered_map<int, int> m;\n");
  std::vector<Diagnostic> out;
  check_determinism(test_config(), file, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].line, 1u);
  EXPECT_EQ(out[1].line, 2u);
  EXPECT_EQ(out[2].line, 3u);
}

TEST(DeterminismTest, IgnoresMembersOrderedContainersAndOtherTrees) {
  const SourceFile inside = make("src/a.cpp",
                                 "double d = event.time();\n"
                                 "auto c = obj->clock();\n"
                                 "std::map<int, int> ordered;\n"
                                 "int time = 3; int y = time + 1;\n");
  std::vector<Diagnostic> out;
  check_determinism(test_config(), inside, out);
  EXPECT_TRUE(out.empty());

  const SourceFile outside =
      make("tests/a.cpp", "auto t = std::chrono::system_clock::now();\n");
  check_determinism(test_config(), outside, out);
  EXPECT_TRUE(out.empty());
}

TEST(DeterminismTest, AllowSuppressesWithJustification) {
  const SourceFile file = make(
      "src/a.cpp",
      "// mocc-lint: allow(determinism): memo set, membership-only\n"
      "std::unordered_set<int> memo;\n"
      "std::unordered_set<int> flagged;\n");
  std::vector<Diagnostic> out;
  check_determinism(test_config(), file, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].line, 3u);
}

/// src/exec sits in the REAL repo config's deterministic subtree: an
/// unjustified wall-clock read there is flagged, and the justified
/// allow the engine's throughput timer carries is honored. Guards the
/// Config::repo_default() path list against losing the entry.
TEST(DeterminismTest, RepoConfigCoversTheExecTree) {
  const Config repo = Config::repo_default();
  const SourceFile unjustified = make(
      "src/exec/engine.cpp", "auto t0 = std::chrono::steady_clock::now();\n");
  std::vector<Diagnostic> out;
  check_determinism(repo, unjustified, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].check, "determinism");
  EXPECT_EQ(out[0].line, 1u);

  const SourceFile justified = make(
      "src/exec/engine.cpp",
      "// mocc-lint: allow(determinism): wall-clock throughput measurement\n"
      "auto t0 = std::chrono::steady_clock::now();\n");
  out.clear();
  check_determinism(repo, justified, out);
  EXPECT_TRUE(out.empty());
}

// --- sched-hook -------------------------------------------------------

TEST(SchedHookTest, FlagsDirectQueuePushesInTheProtocolTree) {
  const SourceFile file = make("src/proto/replica.cpp",
                               "void f(Sim& sim) {\n"
                               "  sim.schedule_call(1, [] {});\n"
                               "  sim.post([] {});\n"
                               "  sim_->post([] {});\n"
                               "}\n");
  std::vector<Diagnostic> out;
  check_sched_hook(test_config(), file, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].line, 2u);
  EXPECT_EQ(out[1].line, 3u);
  EXPECT_EQ(out[2].line, 4u);
}

TEST(SchedHookTest, IgnoresNonCallsOtherTreesAndAllows) {
  // A field named `post`, a local, and a free function are not queue
  // pushes; harness trees are out of scope; allows suppress.
  const SourceFile inside = make("src/proto/replica.cpp",
                                 "int post = 1;\n"
                                 "int y = obj.post;\n"
                                 "int z = post + 2;\n"
                                 "// mocc-lint: allow(sched-hook): harness loop\n"
                                 "void g(Sim& s) { s.schedule_call(1, [] {}); }\n");
  std::vector<Diagnostic> out;
  check_sched_hook(test_config(), inside, out);
  EXPECT_TRUE(out.empty());

  const SourceFile outside =
      make("src/sim/simulator.cpp", "void h(Sim& s) { s.schedule_call(1, [] {}); }\n");
  check_sched_hook(test_config(), outside, out);
  EXPECT_TRUE(out.empty());
}

// --- guarded-by -------------------------------------------------------

TEST(GuardedByTest, FlagsUnannotatedMembersOfMutexHoldingClasses) {
  const SourceFile file = make("src/a.hpp",
                               "class Shared {\n"
                               " public:\n"
                               "  void complete() MOCC_EXCLUDES(mu_);\n"
                               " private:\n"
                               "  std::mutex mu_;\n"
                               "  int value_ MOCC_GUARDED_BY(mu_);\n"
                               "  int bad_;\n"
                               "  std::atomic<bool> flag_;\n"
                               "  const int limit_ = 3;\n"
                               "  static int counter_;\n"
                               "  Widget& ref_;\n"
                               "};\n");
  std::vector<Diagnostic> out;
  check_guarded_by(test_config(), file, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].line, 7u);
  EXPECT_NE(out[0].message.find("'bad_'"), std::string::npos);
  EXPECT_NE(out[0].message.find("'Shared'"), std::string::npos);
}

TEST(GuardedByTest, MutexFreeClassesAndAllowRegionsPass) {
  const SourceFile plain = make("src/a.hpp",
                                "struct Plain {\n"
                                "  int value_;\n"
                                "  std::vector<int> items_;\n"
                                "};\n");
  std::vector<Diagnostic> out;
  check_guarded_by(test_config(), plain, out);
  EXPECT_TRUE(out.empty());

  const SourceFile confined = make(
      "src/b.hpp",
      "class Runner {\n"
      "  std::mutex mu_;\n"
      "  int done_ MOCC_GUARDED_BY(mu_);\n"
      "  // mocc-lint: allow-begin(guarded-by): touched only pre-start\n"
      "  int workers_;\n"
      "  // mocc-lint: allow-end(guarded-by)\n"
      "};\n");
  check_guarded_by(test_config(), confined, out);
  EXPECT_TRUE(out.empty());
}

// --- wire-kind --------------------------------------------------------

TEST(WireKindTest, ParsesTheRegistryTable) {
  std::vector<Diagnostic> out;
  const auto ranges = parse_kind_ranges(make("src/wire_kinds.hpp", kRegistry),
                                        out);
  ASSERT_TRUE(ranges.has_value());
  ASSERT_EQ(ranges->size(), 2u);
  EXPECT_EQ((*ranges)[0].component, "alpha");
  EXPECT_EQ((*ranges)[0].first, 10u);
  EXPECT_EQ((*ranges)[1].last, 29u);
  EXPECT_TRUE(out.empty());
}

TEST(WireKindTest, RejectsOverlappingRanges) {
  std::vector<Diagnostic> out;
  const auto ranges = parse_kind_ranges(
      make("src/wire_kinds.hpp",
           "inline constexpr KindRange kKindRanges[] = {\n"
           "    {\"alpha\", 10, 25},\n"
           "    {\"beta\", 20, 29},\n"
           "};\n"),
      out);
  EXPECT_FALSE(ranges.has_value());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].message.find("overlaps"), std::string::npos);
}

TEST(WireKindTest, CleanTreeHasNoDiagnostics) {
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistry),
      make("src/alpha/a.hpp",
           "constexpr std::uint32_t kA0 = alpha_kind(0);\n"
           "constexpr std::uint32_t kA1 = kA0 + 1;\n"
           "constexpr std::uint32_t kAlphaEnd = kAlphaLast;\n"),
      make("src/beta/b.hpp", "constexpr std::uint32_t kB0 = beta_kind(0);\n"),
      make("src/alpha/a.cpp",
           "void tick(Ctx& ctx) { ctx.send(peer, kA1, payload); }\n")};
  std::vector<Diagnostic> out;
  check_wire_kind(test_config(), files, out);
  for (const auto& d : out) ADD_FAILURE() << to_string(d);
}

TEST(WireKindTest, FlagsCrossFileCollisions) {
  // Two components deliberately colliding on the same concrete kind —
  // the acceptance fixture for the check. First/Last markers equal to
  // kind 0 are not collisions.
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistry),
      make("src/alpha/a.hpp",
           "constexpr std::uint32_t kA0 = alpha_kind(3);\n"
           "constexpr std::uint32_t kAlphaBase = kAlphaFirst;\n"),
      make("src/alpha/a2.hpp",
           "constexpr std::uint32_t kDup = alpha_kind(2) + 1;\n")};
  std::vector<Diagnostic> out;
  check_wire_kind(test_config(), files, out);
  const auto collisions = of_check(out, "wire-kind");
  ASSERT_EQ(collisions.size(), 1u);
  EXPECT_NE(collisions[0].message.find("collides"), std::string::npos);
  EXPECT_EQ(collisions[0].line, 1u);
}

TEST(WireKindTest, FlagsRangeEscapesAndForeignDirectories) {
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistry),
      make("src/alpha/a.hpp",
           "constexpr std::uint32_t kTooBig = alpha_kind(15);\n"),
      make("src/beta/b.hpp",
           "constexpr std::uint32_t kStray = alpha_kind(1);\n")};
  std::vector<Diagnostic> out;
  check_wire_kind(test_config(), files, out);
  ASSERT_EQ(out.size(), 2u);
  std::sort(out.begin(), out.end());
  EXPECT_NE(out[0].message.find("escapes the 'alpha' range"),
            std::string::npos);
  EXPECT_NE(out[1].message.find("outside src/alpha/"), std::string::npos);
}

TEST(WireKindTest, FlagsRawAndNonRegistryKindsAtSendSites) {
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistry),
      make("src/alpha/a.cpp",
           "constexpr std::uint32_t kLocal = 42;\n"
           "void f(Ctx& ctx) {\n"
           "  ctx.send(peer, 7, payload);\n"
           "  ctx.send(peer, kLocal, payload);\n"
           "  ctx.send(peer, kind, payload);\n"  // runtime variable: passes
           "  // mocc-lint: allow(wire-kind): probe uses an app-range kind\n"
           "  ctx.send(peer, 7, payload);\n"
           "}\n")};
  std::vector<Diagnostic> out;
  check_wire_kind(test_config(), files, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].line, 3u);
  EXPECT_NE(out[0].message.find("raw integer kind"), std::string::npos);
  EXPECT_EQ(out[1].line, 4u);
  EXPECT_NE(out[1].message.find("without deriving"), std::string::npos);
}

/// A component with NO registry range cannot reach a send site: every
/// kind it could pass is either a raw literal or a local constant not
/// derived from the registry, and both are flagged. This is the lint
/// half of the fence keeping wire-free subsystems (src/exec) off the
/// simulator; the compile-time half is the static_assert in
/// src/exec/store.hpp that "exec" never gains a registry row.
TEST(WireKindTest, UnregisteredComponentCannotReachSendSites) {
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistry),
      make("src/gamma/g.cpp",
           "constexpr std::uint32_t kGammaPing = 99;\n"
           "void f(Ctx& ctx) {\n"
           "  ctx.send(peer, 99, payload);\n"
           "  ctx.send(peer, kGammaPing, payload);\n"
           "}\n")};
  std::vector<Diagnostic> out;
  check_wire_kind(test_config(), files, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].line, 3u);
  EXPECT_NE(out[0].message.find("raw integer kind"), std::string::npos);
  EXPECT_EQ(out[1].line, 4u);
  EXPECT_NE(out[1].message.find("without deriving"), std::string::npos);
}

TEST(WireKindTest, SendDeclarationsAreNotSendSites) {
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistry),
      make("src/alpha/a.hpp",
           "MessageId send(Process to, std::uint32_t kind, Payload payload);\n"
           "void send_to_others(std::uint32_t kind, Payload payload);\n")};
  std::vector<Diagnostic> out;
  check_wire_kind(test_config(), files, out);
  EXPECT_TRUE(out.empty());
}

// --- trace-registry ---------------------------------------------------

const char* const kTraceHeader =
    "enum class TraceEventType {\n"
    "  kFoo,\n"
    "  kBar,\n"
    "};\n";

const char* const kTraceSource =
    "const char* to_string(TraceEventType type) {\n"
    "  switch (type) {\n"
    "    case TraceEventType::kFoo: return \"foo\";\n"
    "    case TraceEventType::kBar: return \"bar\";\n"
    "  }\n"
    "  return \"?\";\n"
    "}\n";

const char* const kTraceDocs =
    "# Observability\n\n"
    "## Trace events\n\n"
    "| Event | Source |\n"
    "| --- | --- |\n"
    "| `foo` | somewhere |\n"
    "| `bar` | elsewhere |\n\n"
    "## Next section\n";

TEST(TraceRegistryTest, SyncedRegistryIsClean) {
  const std::vector<SourceFile> files = {make("src/trace.hpp", kTraceHeader),
                                         make("src/trace.cpp", kTraceSource)};
  std::vector<Diagnostic> out;
  check_trace_registry(test_config(), files, kTraceDocs, out);
  for (const auto& d : out) ADD_FAILURE() << to_string(d);
}

TEST(TraceRegistryTest, FlagsEveryKindOfDrift) {
  const std::vector<SourceFile> files = {
      make("src/trace.hpp",
           "enum class TraceEventType {\n"
           "  kFoo,\n"
           "  kBar,\n"
           "  kBaz,\n"  // no to_string case
           "};\n"),
      make("src/trace.cpp", kTraceSource),
      // A registered name spelled as a literal outside the registry.
      make("src/other.cpp", "const char* n = \"foo\";\n")};
  std::vector<Diagnostic> out;
  // Docs document `ghost`, which nothing produces; `bar` row missing.
  check_trace_registry(test_config(), files,
                       "## Trace events\n"
                       "| Event |\n"
                       "| --- |\n"
                       "| `foo` |\n"
                       "| `ghost` |\n",
                       out);
  std::sort(out.begin(), out.end());  // (file, line): docs, other, cpp, hpp
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NE(out[0].message.find("'ghost' is not produced"), std::string::npos);
  EXPECT_NE(out[1].message.find("spelled as a literal"), std::string::npos);
  EXPECT_NE(out[2].message.find("'bar' is missing from"), std::string::npos);
  EXPECT_NE(out[3].message.find("'kBaz' has no to_string case"),
            std::string::npos);
}

// The span registry is a second enum/to_string/docs triple in the same
// files, checked with the same machinery.

const char* const kSpanHeader =
    "enum class TraceEventType {\n"
    "  kFoo,\n"
    "};\n"
    "enum class SpanType {\n"
    "  kWait,\n"
    "  kHop,\n"
    "};\n";

const char* const kSpanSource =
    "const char* to_string(TraceEventType type) {\n"
    "  switch (type) {\n"
    "    case TraceEventType::kFoo: return \"foo\";\n"
    "  }\n"
    "  return \"?\";\n"
    "}\n"
    "const char* to_string(SpanType type) {\n"
    "  switch (type) {\n"
    "    case SpanType::kWait: return \"wait\";\n"
    "    case SpanType::kHop: return \"hop\";\n"
    "  }\n"
    "  return \"?\";\n"
    "}\n";

TEST(TraceRegistryTest, SyncedSpanRegistryIsClean) {
  const std::vector<SourceFile> files = {make("src/trace.hpp", kSpanHeader),
                                         make("src/trace.cpp", kSpanSource)};
  std::vector<Diagnostic> out;
  check_trace_registry(test_config(), files,
                       "## Trace events\n"
                       "| Event |\n"
                       "| --- |\n"
                       "| `foo` |\n\n"
                       "## Span types\n"
                       "| Span |\n"
                       "| --- |\n"
                       "| `wait` |\n"
                       "| `hop` |\n",
                       out);
  for (const auto& d : out) ADD_FAILURE() << to_string(d);
}

TEST(TraceRegistryTest, FlagsSpanDrift) {
  const std::vector<SourceFile> files = {
      make("src/trace.hpp", kSpanHeader),
      make("src/trace.cpp", kSpanSource),
      // A registered span name spelled as a literal outside the registry.
      make("src/other.cpp", "const char* n = \"wait\";\n")};
  std::vector<Diagnostic> out;
  // Docs span table misses `hop`.
  check_trace_registry(test_config(), files,
                       "## Trace events\n"
                       "| Event |\n"
                       "| --- |\n"
                       "| `foo` |\n\n"
                       "## Span types\n"
                       "| Span |\n"
                       "| --- |\n"
                       "| `wait` |\n",
                       out);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].message.find("span type name 'wait' spelled as a literal"),
            std::string::npos);
  EXPECT_NE(out[1].message.find("span type 'hop' is missing from"),
            std::string::npos);
}

TEST(TraceRegistryTest, MissingSpanTableIsFlaggedWhenSpansExist) {
  const std::vector<SourceFile> files = {make("src/trace.hpp", kSpanHeader),
                                         make("src/trace.cpp", kSpanSource)};
  std::vector<Diagnostic> out;
  check_trace_registry(test_config(), files,
                       "## Trace events\n"
                       "| Event |\n"
                       "| --- |\n"
                       "| `foo` |\n",
                       out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].message.find("no \"## Span types\" table rows found"),
            std::string::npos);
}

// --- msg-flow ---------------------------------------------------------

/// Registry with a request/response pair table alongside the ranges.
const char* const kRegistryWithPairs = R"cpp(
struct KindRange { const char* component; unsigned first; unsigned last; };
inline constexpr KindRange kKindRanges[] = {
    {"alpha", 10, 19},
    {"beta", 20, 29},
};
struct KindPair { const char* request; const char* response; };
inline constexpr KindPair kKindPairs[] = {
    {"kPing", "kPong"},
};
)cpp";

/// Concrete kind + timer declarations in alpha's pinned directory.
const char* const kAlphaDecls =
    "constexpr std::uint32_t kPing = alpha_kind(0);\n"
    "constexpr std::uint32_t kPong = alpha_kind(1);\n"
    "constexpr std::uint64_t kTick = 1;\n";

/// Fully closed protocol body: both kinds emitted and routed (one via an
/// ==-chain, one via a case label), the timer scheduled and routed.
const char* const kAlphaClosed =
    "void poke(Ctx& ctx) {\n"
    "  ctx.send(peer, kPing, payload);\n"
    "  ctx.set_timer(4, kTick);\n"
    "}\n"
    "void on_message(Ctx& ctx, const Message& message) {\n"
    "  if (message.kind == kPing) {\n"
    "    ctx.send(message.from, kPong, payload);\n"
    "    return;\n"
    "  }\n"
    "  switch (message.kind) {\n"
    "    case kPong: break;\n"
    "  }\n"
    "}\n"
    "void on_timer(Ctx& ctx, std::uint64_t timer_id) {\n"
    "  if (timer_id != kTick) return;\n"
    "}\n";

TEST(MsgFlowTest, ClosedGraphIsClean) {
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistryWithPairs),
      make("src/alpha/proto.hpp", kAlphaDecls),
      make("src/alpha/proto.cpp", kAlphaClosed)};
  std::vector<Diagnostic> out;
  check_msg_flow(test_config(), files, out);
  for (const auto& d : out) ADD_FAILURE() << to_string(d);
}

TEST(MsgFlowTest, FlagsEmittedButUnhandledKind) {
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistry),
      make("src/alpha/proto.hpp",
           "constexpr std::uint32_t kPing = alpha_kind(0);\n"),
      make("src/alpha/proto.cpp",
           "void poke(Ctx& ctx) { ctx.send(peer, kPing, payload); }\n")};
  std::vector<Diagnostic> out;
  check_msg_flow(test_config(), files, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].file, "src/alpha/proto.hpp");
  EXPECT_NE(out[0].message.find(
                "kind 'kPing' is emitted but has no handler in src/alpha/"),
            std::string::npos);
}

TEST(MsgFlowTest, FlagsDeadHandlerAtTheHandlerSite) {
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistry),
      make("src/alpha/proto.hpp",
           "constexpr std::uint32_t kPing = alpha_kind(0);\n"),
      make("src/alpha/proto.cpp",
           "void on_message(Ctx& ctx, const Message& message) {\n"
           "  switch (message.kind) {\n"
           "    case kPing: break;\n"
           "  }\n"
           "}\n")};
  std::vector<Diagnostic> out;
  check_msg_flow(test_config(), files, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].file, "src/alpha/proto.cpp");
  EXPECT_EQ(out[0].line, 3u);
  EXPECT_NE(out[0].message.find("dead handler: kind 'kPing'"),
            std::string::npos);
}

TEST(MsgFlowTest, FlagsOrphanKindAndAllowSuppressesIt) {
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistry),
      make("src/alpha/proto.hpp",
           "constexpr std::uint32_t kPing = alpha_kind(0);\n")};
  std::vector<Diagnostic> out;
  check_msg_flow(test_config(), files, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].message.find("orphan kind 'kPing'"), std::string::npos);

  const std::vector<SourceFile> allowed = {
      make("src/wire_kinds.hpp", kRegistry),
      make("src/alpha/proto.hpp",
           "// mocc-lint: allow(msg-flow): staged rollout, emitter lands "
           "next\n"
           "constexpr std::uint32_t kPing = alpha_kind(0);\n")};
  out.clear();
  check_msg_flow(test_config(), allowed, out);
  EXPECT_TRUE(out.empty());
}

TEST(MsgFlowTest, HandlerOutsideTheComponentDirectoryDoesNotCount) {
  // A kind comparison in beta's tree cannot route an alpha kind.
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistry),
      make("src/alpha/proto.hpp",
           "constexpr std::uint32_t kPing = alpha_kind(0);\n"),
      make("src/alpha/proto.cpp",
           "void poke(Ctx& ctx) { ctx.send(peer, kPing, payload); }\n"),
      make("src/beta/other.cpp",
           "void f(const Message& message) {\n"
           "  if (message.kind == kPing) return;\n"
           "}\n")};
  std::vector<Diagnostic> out;
  check_msg_flow(test_config(), files, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].message.find("is emitted but has no handler"),
            std::string::npos);
}

TEST(MsgFlowTest, FlagsUnpairedResponse) {
  // kPing is live; its declared response kPong is handled but nobody
  // emits it — both the dead handler and the broken pair surface.
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistryWithPairs),
      make("src/alpha/proto.hpp",
           "constexpr std::uint32_t kPing = alpha_kind(0);\n"
           "constexpr std::uint32_t kPong = alpha_kind(1);\n"),
      make("src/alpha/proto.cpp",
           "void poke(Ctx& ctx) { ctx.send(peer, kPing, payload); }\n"
           "void on_message(Ctx& ctx, const Message& message) {\n"
           "  if (message.kind == kPing) return;\n"
           "  if (message.kind == kPong) return;\n"
           "}\n")};
  std::vector<Diagnostic> out;
  check_msg_flow(test_config(), files, out);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].message.find("dead handler: kind 'kPong'"),
            std::string::npos);
  EXPECT_EQ(out[1].file, "src/wire_kinds.hpp");
  EXPECT_NE(out[1].message.find(
                "unpaired response: request 'kPing' is emitted but its "
                "declared response 'kPong' never is"),
            std::string::npos);
}

TEST(MsgFlowTest, FlagsPairRowsNamingUnknownOrForeignConstants) {
  const char* const registry = R"cpp(
struct KindRange { const char* component; unsigned first; unsigned last; };
inline constexpr KindRange kKindRanges[] = {
    {"alpha", 10, 19},
    {"beta", 20, 29},
};
struct KindPair { const char* request; const char* response; };
inline constexpr KindPair kKindPairs[] = {
    {"kNope", "kPing"},
    {"kPing", "kBolt"},
};
)cpp";
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", registry),
      make("src/alpha/proto.hpp",
           "constexpr std::uint32_t kPing = alpha_kind(0);\n"),
      make("src/alpha/proto.cpp",
           "void poke(Ctx& ctx) { ctx.send(peer, kPing, payload); }\n"
           "void on_message(Ctx& ctx, const Message& message) {\n"
           "  if (message.kind == kPing) return;\n"
           "}\n"),
      make("src/beta/proto.hpp",
           "constexpr std::uint32_t kBolt = beta_kind(0);\n"),
      make("src/beta/proto.cpp",
           "void poke(Ctx& ctx) { ctx.send(peer, kBolt, payload); }\n"
           "void on_message(Ctx& ctx, const Message& message) {\n"
           "  if (message.kind == kBolt) return;\n"
           "}\n")};
  std::vector<Diagnostic> out;
  check_msg_flow(test_config(), files, out);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].message.find("kind pair names unknown constant 'kNope'"),
            std::string::npos);
  EXPECT_NE(out[1].message.find(
                "kind pair 'kPing'/'kBolt' spans components 'alpha' and "
                "'beta'"),
            std::string::npos);
}

TEST(MsgFlowTest, FlagsScheduledTimerWithoutARoute) {
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistry),
      make("src/alpha/proto.hpp", "constexpr std::uint64_t kTick = 1;\n"),
      make("src/alpha/proto.cpp",
           "void poke(Ctx& ctx) { ctx.set_timer(4, kTick); }\n")};
  std::vector<Diagnostic> out;
  check_msg_flow(test_config(), files, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].file, "src/alpha/proto.cpp");
  EXPECT_NE(out[0].message.find(
                "timer id 'kTick' is scheduled here but no statement in "
                "src/alpha/ tests it against the on_timer timer_id"),
            std::string::npos);
}

TEST(MsgFlowTest, RuntimeTimerIdsAndUnpinnedComponentsPass) {
  // set_timer with a runtime id carries no known constant; a component
  // without a pinned directory contributes no kinds to the graph.
  Config config = test_config();
  config.component_paths.erase("beta");
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistry),
      make("src/beta/proto.hpp",
           "constexpr std::uint32_t kBolt = beta_kind(0);\n"),
      make("src/alpha/proto.cpp",
           "void poke(Ctx& ctx) { ctx.set_timer(4, deadline_token); }\n")};
  std::vector<Diagnostic> out;
  check_msg_flow(config, files, out);
  for (const auto& d : out) ADD_FAILURE() << to_string(d);
}

// --- atomics ----------------------------------------------------------

/// Discipline table + conforming sites (relaxed carries its allow).
const char* const kLockfreeClean =
    "// mocc-atomics: word: load=acquire,relaxed store=release "
    "cas=acq_rel/acquire\n"
    "struct Slot { std::atomic<std::uint64_t> word; };\n"
    "void f(Slot& s) {\n"
    "  s.word.load(std::memory_order_acquire);\n"
    "  s.word.store(1, std::memory_order_release);\n"
    "  std::uint64_t e = 0;\n"
    "  s.word.compare_exchange_strong(e, 1, std::memory_order_acq_rel,\n"
    "                                 std::memory_order_acquire);\n"
    "  // mocc-lint: allow(atomics): reread under the seqlock; ordered by "
    "the CAS\n"
    "  s.word.load(std::memory_order_relaxed);\n"
    "}\n";

TEST(AtomicsTest, DisciplinedSitesAreClean) {
  const std::vector<SourceFile> files = {
      make("src/lockfree/slot.hpp", kLockfreeClean)};
  std::vector<Diagnostic> out;
  check_atomics(test_config(), files, out);
  for (const auto& d : out) ADD_FAILURE() << to_string(d);
}

TEST(AtomicsTest, FlagsImplicitOrderAndMissingDisciplineRow) {
  const std::vector<SourceFile> files = {make(
      "src/lockfree/slot.cpp",
      "// mocc-atomics: word: load=acquire\n"
      "void f(Slot& s) {\n"
      "  s.word.load();\n"               // implicit seq_cst
      "  s.other.load(std::memory_order_acquire);\n"  // no row
      "}\n")};
  std::vector<Diagnostic> out;
  check_atomics(test_config(), files, out);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].message.find("implicit seq_cst memory order on "
                                "word.load()"),
            std::string::npos);
  EXPECT_NE(out[1].message.find("atomic access other.load() has no "
                                "mocc-atomics discipline row"),
            std::string::npos);
}

TEST(AtomicsTest, FlagsOrdersOutsideTheDeclaredSet) {
  const std::vector<SourceFile> files = {make(
      "src/lockfree/slot.cpp",
      "// mocc-atomics: word: load=acquire store=release\n"
      "void f(Slot& s) {\n"
      "  s.word.store(1, std::memory_order_seq_cst);\n"  // not in store set
      "  s.word.fetch_add(1, std::memory_order_acq_rel);\n"  // no rmw class
      "}\n")};
  std::vector<Diagnostic> out;
  check_atomics(test_config(), files, out);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].message.find("memory order 'seq_cst' on word.store() is "
                                "outside the declared store set (release)"),
            std::string::npos);
  EXPECT_NE(out[1].message.find("discipline row for 'word' declares no rmw "
                                "orders, but word.fetch_add() is one"),
            std::string::npos);
}

TEST(AtomicsTest, RelaxedAlwaysNeedsItsInlineJustification) {
  // The table declaring relaxed is necessary but not sufficient.
  const std::vector<SourceFile> files = {make(
      "src/lockfree/slot.cpp",
      "// mocc-atomics: word: load=acquire,relaxed\n"
      "void f(Slot& s) { s.word.load(std::memory_order_relaxed); }\n")};
  std::vector<Diagnostic> out;
  check_atomics(test_config(), files, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].message.find("relaxed order on word.load() needs an "
                                "inline justified allow"),
            std::string::npos);
}

TEST(AtomicsTest, CasMustSpellBothOrders) {
  const std::vector<SourceFile> files = {make(
      "src/lockfree/slot.cpp",
      "// mocc-atomics: word: cas=acq_rel/acquire\n"
      "void f(Slot& s, std::uint64_t e) {\n"
      "  s.word.compare_exchange_weak(e, 1, std::memory_order_acq_rel);\n"
      "}\n")};
  std::vector<Diagnostic> out;
  check_atomics(test_config(), files, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].message.find("must spell both the success and the "
                                "failure memory order"),
            std::string::npos);
}

TEST(AtomicsTest, FlagsMalformedAndDuplicateTableRows) {
  const std::vector<SourceFile> files = {make(
      "src/lockfree/slot.hpp",
      "// mocc-atomics: word load=acquire\n"       // missing ':'
      "// mocc-atomics: value: load=acquire\n"
      "// mocc-atomics: value: store=release\n")};  // duplicate field
  std::vector<Diagnostic> out;
  check_atomics(test_config(), files, out);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].message.find("malformed mocc-atomics row"),
            std::string::npos);
  EXPECT_NE(out[1].message.find("duplicate mocc-atomics row for field "
                                "'value' (first declared at "
                                "src/lockfree/slot.hpp:2)"),
            std::string::npos);
}

TEST(AtomicsTest, TreesOutsideAtomicsPathsAreNotScanned) {
  const std::vector<SourceFile> files = {
      make("src/alpha/free.cpp", "void f(S& s) { s.word.load(); }\n")};
  std::vector<Diagnostic> out;
  check_atomics(test_config(), files, out);
  EXPECT_TRUE(out.empty());
}

// --- compdb freshness -------------------------------------------------

TEST(CompdbTest, FlagsUnlistedSourcesAndStaleEntries) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / "mocc_compdb_test";
  fs::remove_all(root);
  fs::create_directories(root / "src");
  std::ofstream(root / "src" / "listed.cpp") << "int a;\n";
  std::ofstream(root / "src" / "unlisted.cpp") << "int b;\n";
  std::ofstream(root / "compile_commands.json")
      << "[{\"directory\": \"" << root.generic_string()
      << "\", \"command\": \"c++ -c src/listed.cpp\", \"file\": \""
      << (root / "src" / "listed.cpp").generic_string()
      << "\"},\n{\"directory\": \"" << root.generic_string()
      << "\", \"command\": \"c++ -c src/gone.cpp\", \"file\": \""
      << (root / "src" / "gone.cpp").generic_string() << "\"}]\n";

  RunOptions options;
  options.repo_root = root.string();
  options.compdb_path = (root / "compile_commands.json").string();
  std::vector<Diagnostic> out;
  check_compdb(options, out);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].file, "src/gone.cpp");
  EXPECT_NE(out[0].message.find("no longer exists"), std::string::npos);
  EXPECT_EQ(out[1].file, "src/unlisted.cpp");
  EXPECT_NE(out[1].message.find("not listed in compile_commands.json"),
            std::string::npos);
  fs::remove_all(root);
}

TEST(CompdbTest, MissingDatabaseIsNotAFinding) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / "mocc_no_compdb";
  fs::remove_all(root);
  fs::create_directories(root / "src");
  std::ofstream(root / "src" / "a.cpp") << "int a;\n";
  RunOptions options;
  options.repo_root = root.string();
  std::vector<Diagnostic> out;
  check_compdb(options, out);
  EXPECT_TRUE(out.empty());
  fs::remove_all(root);
}

// --- driver / real tree ----------------------------------------------

TEST(DriverTest, RunChecksMergesAndSortsAllChecks) {
  const std::vector<SourceFile> files = {
      make("src/wire_kinds.hpp", kRegistry),
      make("src/alpha/a.cpp",
           "// mocc-lint: allow(bogus): nope\n"
           "std::unordered_map<int, int> m;\n"
           "void f(Ctx& ctx) { ctx.send(peer, 7, payload); }\n")};
  const auto all =
      run_checks(test_config(), files, /*docs_text=*/"", /*checks=*/{});
  EXPECT_EQ(of_check(all, "suppression").size(), 1u);
  EXPECT_EQ(of_check(all, "determinism").size(), 1u);
  EXPECT_EQ(of_check(all, "wire-kind").size(), 1u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));

  const auto only = run_checks(test_config(), files, "", {"determinism"});
  EXPECT_EQ(only.size(), 1u);
  EXPECT_EQ(only[0].check, "determinism");
}

TEST(RepoLintTest, DiscoveryFindsTheRegistryHeader) {
  RunOptions options;
  options.repo_root = MOCC_LINT_REPO_ROOT;
  const auto files = discover_files(options);
  EXPECT_NE(std::find(files.begin(), files.end(),
                      std::string("src/sim/wire_kinds.hpp")),
            files.end());
  EXPECT_NE(std::find(files.begin(), files.end(),
                      std::string("src/sim/simulator.cpp")),
            files.end());
}

// The acceptance gate: the real tree is lint-clean, with every
// suppression an explicit, justified inline allow.
TEST(RepoLintTest, TreeIsClean) {
  RunOptions options;
  options.repo_root = MOCC_LINT_REPO_ROOT;
  const auto diagnostics = run_lint(options);
  for (const auto& d : diagnostics) ADD_FAILURE() << to_string(d);
  EXPECT_TRUE(diagnostics.empty());
}

}  // namespace
}  // namespace mocc::lint
