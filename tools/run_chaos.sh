#!/usr/bin/env bash
# Chaos harness driver: sweeps fault rates x seeds x replica protocols
# through the full audit / admissibility checkers (src/fault/chaos.cpp).
#
# Usage: tools/run_chaos.sh [--smoke] [chaos flags...]
#
#   --smoke      CI-sized sweep (all three protocols, drop 10%, a few
#                seeds) — finishes in well under a second
#   all other flags are forwarded to the chaos binary (see chaos --help:
#   --seeds=N, --ops=N, --drop=0.02,0.10, --dup=R, --protocols=...,
#   --no-partition, --base-seed=N, --batch to sweep with the hot-path
#   batching layer on)
#
# Exits non-zero when any run violates its consistency condition, leaves
# the workload incomplete, or exhausts a retransmit budget. Run it under
# the asan-ubsan preset (BUILD_DIR=build-asan-ubsan) to also fail on
# leaks and UB — that is what the CI chaos-smoke job does.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
BUILD_DIR="${BUILD_DIR:-build}"

if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target chaos

exec "${BUILD_DIR}/src/fault/chaos" "$@"
