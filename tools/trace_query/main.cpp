// trace_query — analysis CLI over causal span traces (obs/analysis.hpp,
// format produced by obs::write_trace_jsonl / bench_report --trace).
//
//   trace_query trace.jsonl                  # per-m-op phase report
//   trace_query --perfetto=out.json trace.jsonl   # Chrome/Perfetto export
//   trace_query --audit trace.jsonl          # rebuild the history from the
//                                            # trace, run the fast checker
//   trace_query --audit                      # in-process selftest sweep
//
// --condition=mlin|msc|mnorm picks the condition the file audit checks
// (default mlin). Exit status is the verdict: non-zero on truncated
// traces (dropped events or spans), malformed span forests, audit
// violations, or any selftest mismatch.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/system.hpp"
#include "core/relations.hpp"
#include "obs/analysis.hpp"
#include "obs/trace.hpp"
#include "protocols/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using mocc::core::Condition;
using mocc::obs::Forest;
using mocc::obs::MOpLatency;
using mocc::obs::TraceFile;

int fail(const std::string& message) {
  std::cerr << "trace_query: " << message << "\n";
  return 1;
}

void print_usage(const std::string& program) {
  std::cout << "usage: " << program << " [options] [trace.jsonl]\n"
            << "  (no flags)         per-m-operation critical-path report\n"
            << "  --perfetto=PATH    write Chrome/Perfetto trace_event JSON\n"
            << "  --audit [FILE]     rebuild the history from the trace and run\n"
            << "                     the fast checker; with no FILE, run the\n"
            << "                     in-process selftest sweep\n"
            << "  --condition=NAME   mlin (default) | msc | mnorm, for --audit\n"
            << "  --exact-budget=N   state budget for the exact checker when the\n"
            << "                     trace carries no abcast order (2PL runs);\n"
            << "                     0 skips it (default 1000000)\n";
}

std::optional<Condition> parse_condition(const std::string& name) {
  if (name == "mlin") return Condition::kMLinearizability;
  if (name == "msc" || name == "mseq") return Condition::kMSequentialConsistency;
  if (name == "mnorm") return Condition::kMNormality;
  return std::nullopt;
}

bool load_file(const std::string& path, TraceFile* trace, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  if (!mocc::obs::load_trace_jsonl(in, trace, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

/// Shared loud-failure gate: refuses truncated traces.
bool refuse_truncated(const TraceFile& trace, bool require_header, int* exit_code) {
  const std::string reason = mocc::obs::truncation_reason(trace, require_header);
  if (reason.empty()) return false;
  *exit_code = fail(reason);
  return true;
}

int run_report(const TraceFile& trace) {
  int exit_code = 0;
  if (refuse_truncated(trace, /*require_header=*/false, &exit_code)) return exit_code;
  Forest forest;
  std::string error;
  if (!mocc::obs::build_forest(trace, &forest, &error)) return fail(error);
  const std::vector<MOpLatency> mops = mocc::obs::attribute_latency(forest);

  std::cout << "events: " << trace.events.size() << " retained";
  if (trace.has_header) std::cout << " (" << trace.events_dropped << " dropped)";
  std::cout << ", spans: " << trace.spans.size() << " retained";
  if (trace.has_header) std::cout << " (" << trace.spans_dropped << " dropped)";
  std::cout << "\n";
  std::size_t rootless = 0;
  for (const auto& tree : forest.traces) {
    if (!tree.root.has_value()) ++rootless;
  }
  std::cout << "completed m-operations: " << mops.size()
            << ", in-flight traces: " << rootless << "\n\n";

  mocc::util::Table table({"trace", "mop", "proc", "class", "latency", "queue",
                           "agree", "lock", "net"});
  mocc::obs::PhaseBreakdown totals;
  for (const MOpLatency& mop : mops) {
    table.add_row({mocc::util::Table::num(mop.trace_id),
                   mocc::util::Table::num(mop.mop_id),
                   mocc::util::Table::num(std::uint64_t{mop.process}),
                   mop.is_update ? "update" : "query",
                   mocc::util::Table::num(mop.respond - mop.invoke),
                   mocc::util::Table::num(mop.phases.queue),
                   mocc::util::Table::num(mop.phases.agree),
                   mocc::util::Table::num(mop.phases.lock),
                   mocc::util::Table::num(mop.phases.net)});
    totals.queue += mop.phases.queue;
    totals.agree += mop.phases.agree;
    totals.lock += mop.phases.lock;
    totals.net += mop.phases.net;
  }
  std::cout << table.render();
  const std::uint64_t grand = totals.total();
  auto pct = [grand](std::uint64_t part) {
    return grand == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                  static_cast<double>(grand);
  };
  std::cout << "\ncritical-path total: " << grand << " ticks"
            << "  queue " << totals.queue << " (" << pct(totals.queue) << "%)"
            << "  agree " << totals.agree << " (" << pct(totals.agree) << "%)"
            << "  lock " << totals.lock << " (" << pct(totals.lock) << "%)"
            << "  net " << totals.net << " (" << pct(totals.net) << "%)\n";
  return 0;
}

int run_perfetto(const TraceFile& trace, const std::string& out_path) {
  int exit_code = 0;
  if (refuse_truncated(trace, /*require_header=*/false, &exit_code)) return exit_code;
  std::ofstream out(out_path, std::ios::binary);
  if (!out) return fail("cannot open " + out_path + " for writing");
  mocc::obs::write_perfetto_json(out, trace);
  std::cout << "wrote " << trace.events.size() << " events and "
            << trace.spans.size() << " spans to " << out_path << "\n";
  return 0;
}

int run_audit_file(const TraceFile& trace, Condition condition,
                   std::uint64_t exact_budget) {
  int exit_code = 0;
  if (refuse_truncated(trace, /*require_header=*/true, &exit_code)) return exit_code;
  Forest forest;
  std::string error;
  if (!mocc::obs::build_forest(trace, &forest, &error)) return fail(error);
  const mocc::obs::TraceAudit audit =
      mocc::obs::audit_from_trace(trace, condition, exact_budget);
  std::cout << "audit: " << audit.mops << " m-operations rebuilt from trace: "
            << audit.detail << "\n";
  return audit.ok ? 0 : 1;
}

/// One selftest point: run the system with a sink attached, round-trip
/// the trace through JSONL, and require (a) a drop-free well-formed
/// forest, (b) exact phase sums, (c) a rebuilt history equivalent to the
/// recorder's, (d) the same fast-check verdict the recorder yields.
bool selftest_point(const std::string& protocol, std::uint64_t seed, bool faults,
                    std::string* detail) {
  mocc::api::SystemConfig config;
  config.protocol = protocol;
  config.num_processes = 3;
  config.num_objects = 8;
  config.delay = "lan";
  config.seed = seed;
  config.backlog_sample_interval = 64;
  if (faults) {
    config.reliable_link = true;
    config.link.initial_rto = 40;
    config.faults.seed = seed ^ 0x9e3779b97f4a7c15ULL;
    config.faults.default_link.drop_rate = 0.05;
    config.faults.default_link.duplicate_rate = 0.05;
  }
  mocc::obs::RingBufferSink sink(std::size_t{1} << 18);
  mocc::api::System system(config);
  system.set_trace_sink(&sink);
  mocc::protocols::WorkloadParams params;
  params.ops_per_process = 6;
  params.update_ratio = 0.5;
  params.footprint = 2;
  system.run_workload(params);

  std::stringstream jsonl;
  mocc::obs::write_trace_jsonl(jsonl, sink);
  TraceFile trace;
  std::string error;
  if (!mocc::obs::load_trace_jsonl(jsonl, &trace, &error)) {
    *detail = "round-trip parse failed: " + error;
    return false;
  }
  const std::string reason = mocc::obs::truncation_reason(trace, true);
  if (!reason.empty()) {
    *detail = reason;
    return false;
  }
  Forest forest;
  if (!mocc::obs::build_forest(trace, &forest, &error)) {
    *detail = "forest: " + error;
    return false;
  }
  const std::vector<MOpLatency> mops = mocc::obs::attribute_latency(forest);
  for (const MOpLatency& mop : mops) {
    if (mop.phases.total() != mop.respond - mop.invoke) {
      std::ostringstream why;
      why << "m-operation " << mop.mop_id << " phases sum to "
          << mop.phases.total() << ", latency is " << mop.respond - mop.invoke;
      *detail = why.str();
      return false;
    }
  }
  if (mops.size() != system.history().size()) {
    std::ostringstream why;
    why << "trace shows " << mops.size() << " completed m-operations, recorder "
        << system.history().size();
    *detail = why.str();
    return false;
  }
  const mocc::obs::RebuiltExecution rebuilt = mocc::obs::rebuild_execution(
      trace, config.num_processes, config.num_objects);
  if (!rebuilt.history.has_value()) {
    *detail = "rebuild: " + rebuilt.error;
    return false;
  }
  if (!rebuilt.history->equivalent(system.history())) {
    *detail = "rebuilt history is not equivalent to the recorder's";
    return false;
  }
  if (system.supports_audit()) {
    const Condition condition = protocol == "mseq"
                                    ? Condition::kMSequentialConsistency
                                    : Condition::kMLinearizability;
    const mocc::obs::TraceAudit audit =
        mocc::obs::audit_from_trace(trace, condition);
    if (!audit.fast.has_value()) {
      *detail = "trace carried no abcast order for an auditable protocol";
      return false;
    }
    const mocc::core::FastCheckResult recorded = system.check_fast(condition);
    const bool recorded_ok =
        recorded.constraint_holds && recorded.legal && recorded.admissible;
    if (audit.ok != recorded_ok) {
      std::ostringstream why;
      why << "fast-check verdicts differ: trace says "
          << (audit.ok ? "admissible" : "violation") << ", recorder says "
          << (recorded_ok ? "admissible" : "violation");
      *detail = why.str();
      return false;
    }
    if (!audit.ok) {
      *detail = "audit reported a violation: " + audit.detail;
      return false;
    }
    *detail = audit.detail;
  } else {
    const mocc::obs::TraceAudit audit =
        mocc::obs::audit_from_trace(trace, Condition::kMLinearizability);
    if (!audit.ok) {
      *detail = audit.detail;
      return false;
    }
    *detail = audit.detail;
  }
  return true;
}

int run_selftest() {
  const std::vector<std::string> protocols = {"mseq", "mlin", "locking"};
  const std::vector<std::uint64_t> seeds = {1, 7, 13};
  std::size_t ran = 0;
  std::size_t failed = 0;
  for (const std::string& protocol : protocols) {
    for (const std::uint64_t seed : seeds) {
      for (const bool faults : {false, true}) {
        std::string detail;
        const bool ok = selftest_point(protocol, seed, faults, &detail);
        ++ran;
        if (!ok) ++failed;
        std::cout << (ok ? "ok  " : "FAIL") << "  " << protocol << " seed="
                  << seed << (faults ? " faults=on " : " faults=off")
                  << "  " << detail << "\n";
      }
    }
  }
  std::cout << "selftest: " << (ran - failed) << "/" << ran << " passed\n";
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  mocc::util::CliArgs args(argc, argv);
  if (args.get_bool("help", false)) {
    print_usage(args.program_name());
    return 0;
  }
  const std::string audit = args.get_string("audit", "");
  const std::string perfetto = args.get_string("perfetto", "");
  const std::string condition_name = args.get_string("condition", "mlin");
  const auto exact_budget =
      static_cast<std::uint64_t>(args.get_int("exact-budget", 1'000'000));
  const auto unused = args.unused();
  if (!unused.empty()) {
    return fail("unknown flag --" + unused.front() + " (try --help)");
  }
  const std::optional<Condition> condition = parse_condition(condition_name);
  if (!condition.has_value()) {
    return fail("unknown condition '" + condition_name +
                "' (expected mlin, msc, or mnorm)");
  }

  // `--audit FILE` parses as audit=FILE; a bare `--audit` as audit=true.
  std::string input;
  if (!args.positional().empty()) input = args.positional().front();
  if (audit == "true" && input.empty()) return run_selftest();
  if (!audit.empty() && audit != "true") input = audit;
  if (input.empty()) {
    print_usage(args.program_name());
    return 2;
  }

  TraceFile trace;
  std::string error;
  if (!load_file(input, &trace, &error)) return fail(error);
  if (!audit.empty()) return run_audit_file(trace, *condition, exact_budget);
  if (!perfetto.empty()) return run_perfetto(trace, perfetto);
  return run_report(trace);
}
