// mocc_check — exhaustive small-scope schedule exploration (src/check).
//
//   mocc_check                               # explore one config (flags below)
//   mocc_check --mutation=seq-swap --out=cx.txt --trace=cx.jsonl
//                                            # find + save a counterexample
//   mocc_check --replay cx.txt               # re-judge a saved schedule
//   mocc_check --sweep                       # 3 protocols x 2 scopes, clean
//   mocc_check --compare                     # DPOR vs naive enumeration
//   mocc_check --selftest                    # seeded mutations must be caught
//
// Exit status: 0 = explored clean (or replayed admissible), 1 = violation
// found (or replayed violation), 2 = incomplete/diverged/usage error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/explore.hpp"
#include "check/replay.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using mocc::check::Counterexample;
using mocc::check::ExploreConfig;
using mocc::check::ExploreResult;
using mocc::check::ReplayResult;

int fail(const std::string& message) {
  std::cerr << "mocc_check: " << message << "\n";
  return 2;
}

void print_usage(const std::string& program) {
  std::cout
      << "usage: " << program << " [mode] [options]\n"
      << "modes:\n"
      << "  (default)            explore one configuration exhaustively\n"
      << "  --replay FILE        re-execute a saved counterexample\n"
      << "  --sweep              exhaust the documented small scopes for\n"
      << "                       mseq, mlin and locking (expect: clean)\n"
      << "  --compare            same config with and without reduction;\n"
      << "                       report the DPOR pruning ratio\n"
      << "  --selftest           explore seeded protocol mutations; each\n"
      << "                       must yield a replayable counterexample\n"
      << "config options (explore/compare):\n"
      << "  --protocol=NAME      mseq (default) | mlin | mlin-narrow |\n"
      << "                       mlin-bcastq | locking | aggregate\n"
      << "  --broadcast=NAME     sequencer (default) | isis\n"
      << "  --mutation=NAME      seq-swap | skip-delivery | early-release\n"
      << "  --batch              explore with hot-path batching on\n"
      << "                       (sequencer group-commit + mlin query\n"
      << "                       rounds; also honored by --sweep)\n"
      << "  --processes=N --objects=N --ops=N   scope (default 2/2/2)\n"
      << "  --max-schedules=N --max-depth=N     exploration budgets\n"
      << "  --exact-budget=N     exact-checker state budget (locking)\n"
      << "  --no-sleep-sets --no-state-hash     disable a reduction\n"
      << "  --history-only       skip protocol-internal (P5.x) findings;\n"
      << "                       stop only on history-level violations\n"
      << "  --hash-bits=N        mask the primary state hash (test knob)\n"
      << "output options:\n"
      << "  --out=FILE           write the counterexample replay file\n"
      << "  --trace=FILE         write the violating schedule's causal-span\n"
      << "                       trace (JSONL for trace_query --audit)\n";
}

ExploreConfig config_from_flags(const mocc::util::CliArgs& args) {
  ExploreConfig config;
  config.num_processes = static_cast<std::size_t>(
      args.get_int("processes", static_cast<std::int64_t>(config.num_processes)));
  config.num_objects = static_cast<std::size_t>(
      args.get_int("objects", static_cast<std::int64_t>(config.num_objects)));
  config.ops_per_process = static_cast<std::size_t>(
      args.get_int("ops", static_cast<std::int64_t>(config.ops_per_process)));
  config.protocol = args.get_string("protocol", config.protocol);
  config.broadcast = args.get_string("broadcast", config.broadcast);
  config.mutation = args.get_string("mutation", config.mutation);
  config.batching = args.get_bool("batch", false);
  config.max_schedules = static_cast<std::uint64_t>(args.get_int(
      "max-schedules", static_cast<std::int64_t>(config.max_schedules)));
  config.max_depth = static_cast<std::size_t>(
      args.get_int("max-depth", static_cast<std::int64_t>(config.max_depth)));
  config.exact_states_budget = static_cast<std::uint64_t>(args.get_int(
      "exact-budget", static_cast<std::int64_t>(config.exact_states_budget)));
  config.use_sleep_sets = !args.get_bool("no-sleep-sets", false);
  config.use_state_hash = !args.get_bool("no-state-hash", false);
  config.history_violations_only = args.get_bool("history-only", false);
  config.hash_bits =
      static_cast<unsigned>(args.get_int("hash-bits", config.hash_bits));
  return config;
}

std::string scope_label(const ExploreConfig& config) {
  std::ostringstream out;
  out << config.protocol;
  if (!config.mutation.empty()) out << "+" << config.mutation;
  if (config.batching) out << "+batch";
  out << " " << config.num_processes << "p/" << config.num_objects << "o/"
      << config.ops_per_process << "ops";
  return out.str();
}

void print_stats(const ExploreResult& result) {
  const mocc::check::ExploreStats& s = result.stats;
  std::cout << "runs: " << s.runs_total << " (" << s.schedules_checked
            << " terminal schedules checked)\n"
            << "pruned: " << s.sleep_pruned << " sleep-set branches, "
            << s.hash_pruned << " revisited states\n"
            << "choice points: " << s.choice_points
            << ", max depth: " << s.max_depth_seen << " ("
            << s.depth_truncations << " truncations)\n"
            << "distinct states: " << s.distinct_states << " ("
            << s.hash_collisions << " primary-hash collisions)\n";
  if (s.exact_undecided != 0) {
    std::cout << "exact checker undecided on " << s.exact_undecided
              << " schedules (raise --exact-budget)\n";
  }
  if (s.audit_only_violations != 0) {
    std::cout << "skipped " << s.audit_only_violations
              << " protocol-internal (P5.x) findings (--history-only)\n";
  }
}

/// Writes the --out / --trace artifacts for a found counterexample.
/// The trace comes from a verifying replay, so what lands in the file is
/// exactly the schedule the checkers condemned.
int write_artifacts(const Counterexample& counterexample,
                    const std::string& out_path, const std::string& trace_path) {
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) return fail("cannot open " + out_path);
    out << mocc::check::format_counterexample(counterexample);
    std::cout << "counterexample written to " << out_path << "\n";
  }
  if (!trace_path.empty()) {
    mocc::obs::RingBufferSink sink(1 << 20);
    const ReplayResult replayed = mocc::check::replay(counterexample, &sink);
    if (!replayed.faithful) {
      return fail("counterexample failed to replay: " + replayed.divergence);
    }
    std::ofstream out(trace_path, std::ios::binary);
    if (!out) return fail("cannot open " + trace_path);
    mocc::obs::write_trace_jsonl(out, sink);
    std::cout << "violating schedule's trace written to " << trace_path
              << "\n";
  }
  return 0;
}

int run_explore(const mocc::util::CliArgs& args) {
  const ExploreConfig config = config_from_flags(args);
  const std::string out_path = args.get_string("out", "");
  const std::string trace_path = args.get_string("trace", "");
  std::cout << "exploring " << scope_label(config) << "\n";
  const ExploreResult result = mocc::check::explore(config);
  print_stats(result);
  if (result.violation.has_value()) {
    std::cout << "VIOLATION after " << result.stats.schedules_checked
              << " schedules: " << result.violation->reason << "\n"
              << "schedule: " << result.violation->choices.size()
              << " choices\n";
    const int artifact_status =
        write_artifacts(*result.violation, out_path, trace_path);
    return artifact_status != 0 ? artifact_status : 1;
  }
  if (!result.complete) {
    std::cout << "INCOMPLETE: budget exhausted before the schedule space\n";
    return 2;
  }
  std::cout << "complete: no admissibility violation on any schedule\n";
  return 0;
}

int run_sweep(const mocc::util::CliArgs& args) {
  const std::uint64_t max_schedules = static_cast<std::uint64_t>(
      args.get_int("max-schedules", 1 << 20));
  const bool batching = args.get_bool("batch", false);
  struct Scope {
    std::size_t processes, objects, ops;
  };
  const std::vector<std::string> protocols = {"mseq", "mlin", "locking"};
  const std::vector<Scope> scopes = {{2, 2, 2}, {3, 2, 2}};
  mocc::util::Table table(
      {"config", "runs", "checked", "sleep-pruned", "state-pruned", "verdict"});
  int status = 0;
  for (const std::string& protocol : protocols) {
    for (const Scope& scope : scopes) {
      ExploreConfig config;
      config.protocol = protocol;
      config.num_processes = scope.processes;
      config.num_objects = scope.objects;
      config.ops_per_process = scope.ops;
      config.max_schedules = max_schedules;
      config.batching = batching;
      const ExploreResult result = mocc::check::explore(config);
      std::string verdict = "clean";
      if (result.violation.has_value()) {
        verdict = "VIOLATION";
        status = 1;
        std::cerr << "mocc_check: " << scope_label(config) << ": "
                  << result.violation->reason << "\n";
      } else if (!result.complete) {
        verdict = "incomplete";
        if (status == 0) status = 2;
      }
      table.add_row({scope_label(config),
                     mocc::util::Table::num(result.stats.runs_total),
                     mocc::util::Table::num(result.stats.schedules_checked),
                     mocc::util::Table::num(result.stats.sleep_pruned),
                     mocc::util::Table::num(result.stats.hash_pruned),
                     verdict});
    }
  }
  std::cout << table.render();
  if (status == 0) {
    std::cout << "sweep clean: every schedule of every config admissible\n";
  }
  return status;
}

int run_compare(const mocc::util::CliArgs& args) {
  ExploreConfig reduced = config_from_flags(args);
  reduced.use_sleep_sets = true;
  reduced.use_state_hash = true;
  ExploreConfig naive = reduced;
  naive.use_sleep_sets = false;
  naive.use_state_hash = false;

  std::cout << "config: " << scope_label(reduced) << "\n";
  const ExploreResult naive_result = mocc::check::explore(naive);
  std::cout << "naive enumeration: " << naive_result.stats.runs_total
            << " runs ("
            << (naive_result.complete ? "complete" : "BUDGET EXHAUSTED")
            << ")\n";
  const ExploreResult reduced_result = mocc::check::explore(reduced);
  std::cout << "sleep sets + state hash: " << reduced_result.stats.runs_total
            << " runs ("
            << (reduced_result.complete ? "complete" : "BUDGET EXHAUSTED")
            << ")\n";
  if (naive_result.violation.has_value() !=
      reduced_result.violation.has_value()) {
    // Exit 1 (a found defect), distinct from 2 (budget exhaustion): a
    // bounded CI compare must still hard-fail on an unsound reduction.
    std::cout << "reduction changed the verdict - DPOR UNSOUND\n";
    return 1;
  }
  if (reduced_result.stats.runs_total == 0) return fail("no runs executed");
  const double ratio = static_cast<double>(naive_result.stats.runs_total) /
                       static_cast<double>(reduced_result.stats.runs_total);
  std::cout << "reduction: " << ratio << "x fewer runs\n";
  return naive_result.complete && reduced_result.complete ? 0 : 2;
}

int run_replay_file(const mocc::util::CliArgs& args, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Counterexample counterexample;
  std::string error;
  if (!mocc::check::parse_counterexample(buffer.str(), counterexample, error)) {
    return fail(path + ": " + error);
  }
  std::cout << "replaying " << scope_label(counterexample.config) << " ("
            << counterexample.choices.size() << " choices)\n";
  if (!counterexample.reason.empty()) {
    std::cout << "recorded reason: " << counterexample.reason << "\n";
  }

  const std::string trace_path = args.get_string("trace", "");
  mocc::obs::RingBufferSink sink(1 << 20);
  const ReplayResult result = mocc::check::replay(
      counterexample, trace_path.empty() ? nullptr : &sink);
  if (!result.divergence.empty()) return fail(result.divergence);
  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary);
    if (!out) return fail("cannot open " + trace_path);
    mocc::obs::write_trace_jsonl(out, sink);
    std::cout << "trace written to " << trace_path << "\n";
  }
  if (!result.decided) return fail("exact checker budget exhausted");
  if (!result.violation.empty()) {
    std::cout << "VIOLATION reproduced: " << result.violation << "\n";
    return 1;
  }
  std::cout << "schedule replayed admissible\n";
  return 0;
}

int run_selftest() {
  struct Case {
    const char* protocol;
    const char* broadcast;
    const char* mutation;
    std::size_t objects;
  };
  // seq-swap runs on one object: it swaps the labels of the FIRST two
  // broadcast positions, and the fixed workload's first two broadcasts
  // touch disjoint objects unless every op shares one — swapping
  // non-conflicting updates is (correctly) admissible. skip-delivery
  // also needs one object: mlin queries merge every replica's copy, so
  // at larger scopes the stale local copy is healed before any read
  // observes it and the mutation only dents protocol-internal
  // timestamps; with one object the victim replica's own next UPDATE
  // reads the lost write's object, breaking value coherence.
  const std::vector<Case> cases = {
      {"mseq", "sequencer", "seq-swap", 1},
      {"mlin", "sequencer", "skip-delivery", 1},
      {"locking", "sequencer", "early-release", 2},
  };
  int failures = 0;
  for (const Case& c : cases) {
    ExploreConfig config;
    config.protocol = c.protocol;
    config.broadcast = c.broadcast;
    config.mutation = c.mutation;
    config.num_objects = c.objects;
    const std::string label = scope_label(config);
    const ExploreResult result = mocc::check::explore(config);
    if (!result.violation.has_value()) {
      std::cout << "FAIL " << label << ": mutation not caught ("
                << result.stats.schedules_checked << " schedules, "
                << (result.complete ? "complete" : "incomplete") << ")\n";
      ++failures;
      continue;
    }
    // Round-trip through the file format, then re-judge: the saved
    // artifact must reproduce the violation, not just describe it.
    const std::string text =
        mocc::check::format_counterexample(*result.violation);
    Counterexample parsed;
    std::string error;
    if (!mocc::check::parse_counterexample(text, parsed, error)) {
      std::cout << "FAIL " << label << ": counterexample round-trip: " << error
                << "\n";
      ++failures;
      continue;
    }
    const ReplayResult replayed = mocc::check::replay(parsed);
    if (!replayed.faithful) {
      std::cout << "FAIL " << label << ": " << replayed.divergence << "\n";
      ++failures;
      continue;
    }
    if (replayed.violation.empty()) {
      std::cout << "FAIL " << label
                << ": counterexample replayed admissible\n";
      ++failures;
      continue;
    }
    // Each counterexample must be history-level: a rebuilt-from-trace
    // audit (trace_query --audit) has to reproduce it, not just the
    // in-process protocol checks.
    if (!replayed.history_level) {
      std::cout << "FAIL " << label
                << ": violation is not history-level (a trace audit would "
                   "pass): "
                << replayed.violation << "\n";
      ++failures;
      continue;
    }
    std::cout << "PASS " << label << ": caught in "
              << result.stats.schedules_checked << " schedules, replayed: "
              << replayed.violation << "\n";
  }
  // Negative control: the correct protocols must explore clean, or the
  // positives above prove nothing.
  for (const char* protocol : {"mseq", "mlin", "locking"}) {
    ExploreConfig config;
    config.protocol = protocol;
    const ExploreResult result = mocc::check::explore(config);
    if (result.violation.has_value() || !result.complete) {
      std::cout << "FAIL " << scope_label(config)
                << ": clean protocol did not explore clean\n";
      ++failures;
    } else {
      std::cout << "PASS " << scope_label(config) << ": clean ("
                << result.stats.schedules_checked << " schedules)\n";
    }
  }
  if (failures != 0) {
    std::cout << failures << " selftest case(s) failed\n";
    return 1;
  }
  std::cout << "selftest passed: every seeded mutation yielded a replayable "
               "counterexample\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  mocc::util::CliArgs args(argc, argv);
  if (args.get_bool("help", false)) {
    print_usage(args.program_name());
    return 0;
  }

  int status = 0;
  if (args.get_bool("selftest", false)) {
    status = run_selftest();
  } else if (args.get_bool("sweep", false)) {
    status = run_sweep(args);
  } else if (args.get_bool("compare", false)) {
    status = run_compare(args);
  } else if (args.has("replay") || !args.positional().empty()) {
    const std::string path = args.has("replay")
                                 ? args.get_string("replay", "")
                                 : args.positional().front();
    status = run_replay_file(args, path);
  } else {
    status = run_explore(args);
  }

  const std::vector<std::string> unused = args.unused();
  if (!unused.empty()) {
    std::string message = "unknown flag(s):";
    for (const std::string& flag : unused) message += " --" + flag;
    return fail(message);
  }
  return status;
}
