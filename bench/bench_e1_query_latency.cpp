// E1 — Query latency: m-sequential consistency vs m-linearizability.
//
// Paper hook (§5.1 vs §5.2): Figure 4 answers queries from the local
// copy (zero messages, zero added latency); Figure 6 must contact every
// process and wait for all replies, so query latency grows with the
// round-trip to the slowest replica. Expected shape: m-seq query latency
// ~ 0 regardless of n; m-lin query latency ~ one round trip, mildly
// increasing with n (max over n-1 samples of the delay distribution).
//
// Counters (virtual ticks): q_mean, q_p99, u_mean, u_p99, plus the
// whole-run registry metrics (msgs, bytes, tput, ...).
#include "common.hpp"

namespace mocc::bench {
namespace {

void QueryLatency(::benchmark::State& state, const std::string& protocol,
                  const std::string& delay) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RunResult result;
  for (auto _ : state) {
    api::SystemConfig config;
    config.protocol = protocol;
    config.num_processes = n;
    config.num_objects = 16;
    config.delay = delay;
    config.seed = 42 + state.iterations();
    protocols::WorkloadParams params;
    params.ops_per_process = 40;
    params.update_ratio = 0.2;  // query-heavy: the contrast under test
    params.footprint = 2;
    result = run_experiment(config, params);
  }
  set_run_counters(state, result);
}

void register_all() {
  for (const char* protocol : {"mseq", "mlin", "mlin-narrow", "mlin-bcastq"}) {
    for (const char* delay : {"lan", "wan"}) {
      auto* b = ::benchmark::RegisterBenchmark(
          (std::string("E1/query_latency/") + protocol + "/" + delay).c_str(),
          [protocol, delay](::benchmark::State& state) {
            QueryLatency(state, protocol, delay);
          });
      b->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
      b->Iterations(1)->Unit(::benchmark::kMillisecond);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mocc::bench
