// E4 — The NP-completeness of verification, experimentally.
//
// Paper hook (Theorems 1-2): deciding m-sequential consistency or
// m-linearizability of a history is NP-complete even with reads-from
// known. The exact checker's cost therefore grows exponentially with the
// number of m-operations on adversarial inputs, while each step of the
// search is cheap. This bench measures:
//   - wall time and states visited of the exact checker on free (mixed
//     admissible/inadmissible) histories as m grows;
//   - the same on admissible-by-construction histories (the "yes"
//     side is often easier: a witness can be found greedily);
//   - the effect of the ~rw-pruning and memoization options;
//   - m-linearizability vs m-sequential consistency (the real-time edges
//     prune the search, so m-SC — fewer constraints, more freedom —
//     is the harder verification problem).
//
// Counter: states = exact-checker states visited (averaged over seeds).
#include "common.hpp"
#include "core/admissibility.hpp"
#include "core/generate.hpp"
#include "txn/generate.hpp"
#include "txn/reduction.hpp"
#include "util/rng.hpp"

namespace mocc::bench {
namespace {

using core::AdmissibilityOptions;
using core::Condition;
using core::GeneratorParams;

GeneratorParams params_for(std::size_t mops) {
  GeneratorParams params;
  params.num_mops = mops;
  // Few processes + few objects + many writers = weakly constrained
  // orders with many interchangeable writes: the hard regime.
  params.num_processes = 3;
  params.num_objects = 2;
  params.write_probability = 0.8;
  params.min_ops_per_mop = 1;
  params.max_ops_per_mop = 2;
  return params;
}

void ExactChecker(::benchmark::State& state, Condition condition, bool free_family,
                  bool memoize, bool rw_prune) {
  const auto mops = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2025);
  double states_total = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto h = free_family ? core::generate_free_history(params_for(mops), rng)
                         : core::generate_admissible_history(params_for(mops), rng);
    AdmissibilityOptions options;
    options.use_rw_pruning = rw_prune;
    options.use_memoization = memoize;
    options.max_states = 50'000'000;
    state.ResumeTiming();

    const auto result = core::check_condition(h, condition, options);
    ::benchmark::DoNotOptimize(result.admissible);
    states_total += static_cast<double>(result.states_visited);
    ++runs;
  }
  obs::Registry registry;
  registry.counter("runs").set(runs);
  registry.gauge("states").set(states_total / static_cast<double>(runs));
  export_metrics(state, registry);
}

/// Theorem-2 instances: random interleaved schedules pushed through the
/// reduction — checking the resulting history for m-linearizability IS
/// deciding strict view serializability, the problem the paper reduces
/// from. These inherit the NP-hard structure directly.
void ReducedSchedules(::benchmark::State& state, bool prune) {
  const auto txns = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4242);
  txn::ScheduleParams params;
  params.num_txns = txns;
  params.num_entities = 2;
  params.min_actions_per_txn = 2;
  params.max_actions_per_txn = 3;
  params.write_probability = 0.7;
  double states_total = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    txn::Schedule schedule = txn::generate_interleaved_schedule(params, rng);
    auto reduced = txn::reduce_to_history(schedule);
    while (!reduced.feasible) {
      schedule = txn::generate_interleaved_schedule(params, rng);
      reduced = txn::reduce_to_history(schedule);
    }
    AdmissibilityOptions options;
    options.use_rw_pruning = prune;
    options.use_memoization = prune;
    options.max_states = 50'000'000;
    state.ResumeTiming();

    const auto result =
        core::check_condition(reduced.history, Condition::kMLinearizability, options);
    ::benchmark::DoNotOptimize(result.admissible);
    states_total += static_cast<double>(result.states_visited);
    ++runs;
  }
  obs::Registry registry;
  registry.counter("runs").set(runs);
  registry.gauge("states").set(states_total / static_cast<double>(runs));
  export_metrics(state, registry);
}

void register_all() {
  ::benchmark::RegisterBenchmark("E4/reduction/mlin/pruned",
                                 [](::benchmark::State& s) {
                                   ReducedSchedules(s, true);
                                 })
      ->DenseRange(4, 12, 2)
      ->Unit(::benchmark::kMicrosecond);
  ::benchmark::RegisterBenchmark("E4/reduction/mlin/raw",
                                 [](::benchmark::State& s) {
                                   ReducedSchedules(s, false);
                                 })
      ->DenseRange(4, 12, 2)
      ->Unit(::benchmark::kMicrosecond);
  struct Variant {
    const char* name;
    Condition condition;
    bool free_family;
    bool memoize;
    bool rw_prune;
  };
  // The memoization and ~rw-pruning ablation is split so each lever's
  // contribution is measurable on its own.
  const Variant variants[] = {
      {"E4/exact/msc/free/memo+rw", Condition::kMSequentialConsistency, true, true,
       true},
      {"E4/exact/msc/free/memo-only", Condition::kMSequentialConsistency, true, true,
       false},
      {"E4/exact/msc/free/rw-only", Condition::kMSequentialConsistency, true, false,
       true},
      {"E4/exact/msc/free/raw", Condition::kMSequentialConsistency, true, false,
       false},
      {"E4/exact/mlin/free/memo+rw", Condition::kMLinearizability, true, true, true},
      {"E4/exact/msc/admissible/memo+rw", Condition::kMSequentialConsistency, false,
       true, true},
  };
  for (const auto& v : variants) {
    auto* b = ::benchmark::RegisterBenchmark(v.name, [v](::benchmark::State& state) {
      ExactChecker(state, v.condition, v.free_family, v.memoize, v.rw_prune);
    });
    b->DenseRange(6, 18, 2);
    b->Unit(::benchmark::kMicrosecond);
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mocc::bench
