// E5 — Theorem 7 in practice: polynomial checking of constrained
// histories vs the exact exponential checker.
//
// Paper hook (§4): under the WW-constraint — which the §5 protocols
// enforce via atomic broadcast — admissibility ⟺ legality, so a
// protocol-generated history of m m-operations can be verified in
// polynomial time (fast_check) instead of exponential (check_admissible).
// Expected shape: the Theorem-7 checker scales to histories the exact
// checker cannot touch; on small histories both agree.
//
// Counter: mops = history size actually checked.
#include "common.hpp"
#include "core/admissibility.hpp"
#include "core/fast_check.hpp"

namespace mocc::bench {
namespace {

/// Protocol-generated history + its recorded ~ww order.
struct Recorded {
  core::History history;
  util::BitRelation ww;
};

Recorded record_history(std::size_t total_ops) {
  api::SystemConfig config;
  config.protocol = "mlin";
  config.num_processes = 4;
  config.num_objects = 8;
  config.delay = "lan";
  config.seed = 99;
  api::System system(config);
  protocols::WorkloadParams params;
  params.ops_per_process = total_ops / config.num_processes;
  params.update_ratio = 0.5;
  params.footprint = 2;
  system.run_workload(params);
  return Recorded{system.history(), system.recorder().build_ww_order()};
}

void FastChecker(::benchmark::State& state) {
  const auto total = static_cast<std::size_t>(state.range(0));
  const Recorded recorded = record_history(total);
  for (auto _ : state) {
    const auto result = core::fast_check_condition(
        recorded.history, core::Condition::kMLinearizability, recorded.ww,
        core::Constraint::kWW);
    ::benchmark::DoNotOptimize(result.admissible);
  }
  obs::Registry registry;
  registry.counter("mops").set(recorded.history.size());
  export_metrics(state, registry);
}

void ExactChecker(::benchmark::State& state, bool prune) {
  const auto total = static_cast<std::size_t>(state.range(0));
  const Recorded recorded = record_history(total);
  core::AdmissibilityOptions options;
  options.use_rw_pruning = prune;
  options.use_memoization = prune;
  options.max_states = 100'000'000;
  double states = 0;
  for (auto _ : state) {
    // The exact checker gets the same information (base order + ~ww).
    auto base = core::base_order(recorded.history, core::Condition::kMLinearizability);
    base.merge(recorded.ww);
    const auto result = core::check_admissible(recorded.history, base, options);
    ::benchmark::DoNotOptimize(result.admissible);
    states = static_cast<double>(result.states_visited);
  }
  obs::Registry registry;
  registry.counter("mops").set(recorded.history.size());
  registry.gauge("states").set(states);
  export_metrics(state, registry);
}

void register_all() {
  ::benchmark::RegisterBenchmark("E5/theorem7_poly", FastChecker)
      ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
      ->Unit(::benchmark::kMillisecond);
  // The exact checker on WW-constrained histories stays fast when armed
  // with rw-pruning (the extended order is nearly total) …
  ::benchmark::RegisterBenchmark("E5/exact_pruned",
                                 [](::benchmark::State& s) { ExactChecker(s, true); })
      ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
      ->Unit(::benchmark::kMillisecond);
  // … but the raw backtracking search — what a verifier without Theorem 7
  // (and without the ~rw insight it is built on) would run — explores the
  // exponential space of query placements. Capped sizes.
  ::benchmark::RegisterBenchmark("E5/exact_raw",
                                 [](::benchmark::State& s) { ExactChecker(s, false); })
      ->Arg(16)->Arg(24)->Arg(32)->Arg(40)
      ->Unit(::benchmark::kMillisecond);
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mocc::bench
