// E3 — Message complexity per m-operation.
//
// Paper hook (§5.2): an m-lin query costs 2(n-1) messages ("query" to all
// + replies); an m-seq query costs 0; an update costs one atomic
// broadcast — n-1 (+1 remote submit) for the sequencer, 3(n-1) for ISIS.
// Sweeping the update ratio shifts the per-op average between the query
// and update costs; sweeping n shows the linear growth. The §5.2 remark
// (narrow replies) shows up in bytes/op, not messages/op.
//
// Counters: msg_per_op, bytes_per_op.
#include "common.hpp"

namespace mocc::bench {
namespace {

void MessageComplexity(::benchmark::State& state, const std::string& protocol,
                       double update_ratio) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RunResult result;
  for (auto _ : state) {
    api::SystemConfig config;
    config.protocol = protocol;
    config.num_processes = n;
    config.num_objects = 16;
    config.delay = "lan";
    config.seed = 11 + state.iterations();
    protocols::WorkloadParams params;
    params.ops_per_process = 40;
    params.update_ratio = update_ratio;
    params.footprint = 2;
    result = run_experiment(config, params);
  }
  set_run_counters(state, result);
}

void register_all() {
  for (const char* protocol :
       {"mseq", "mlin", "mlin-narrow", "mlin-bcastq", "locking", "aggregate"}) {
    for (const double ratio : {0.0, 0.2, 0.5, 1.0}) {
      auto* b = ::benchmark::RegisterBenchmark(
          (std::string("E3/messages/") + protocol + "/u" +
              std::to_string(static_cast<int>(ratio * 100))).c_str(),
          [protocol, ratio](::benchmark::State& state) {
            MessageComplexity(state, protocol, ratio);
          });
      b->Arg(2)->Arg(4)->Arg(8)->Arg(16);
      b->Iterations(1)->Unit(::benchmark::kMillisecond);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mocc::bench
