// bench_report — runs the E1-E11 experiment suite and writes the
// machine-readable BENCH_results.json artifact (schema in
// docs/observability.md). tools/run_bench.sh is the packaged entry
// point; invoke this directly for finer control:
//
//   bench_report                      # full suite -> BENCH_results.json
//   bench_report --smoke              # CI-sized sweeps
//   bench_report --only=E1,E5 --print # subset + tables on stdout
//   bench_report --trace=trace.jsonl  # also write a demo span trace
//   bench_report --spans              # phase-breakdown series (minor 2)
//
// Output is deterministic: rerunning with the same flags produces a
// byte-identical file.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "experiments.hpp"
#include "util/cli.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void print_usage(const char* program) {
  std::cout << "usage: " << program << " [options]\n"
            << "  --smoke          reduced CI-sized sweeps\n"
            << "  --only=E1,E5     run a subset of the experiments\n"
            << "  --out=PATH       artifact path (default BENCH_results.json)\n"
            << "  --print          also render per-experiment tables to stdout\n"
            << "  --trace=PATH     write a demo JSONL span trace\n"
            << "  --spans          collect causal spans on E1/E2/E8/E9 and add the\n"
            << "                   phase-breakdown metrics (schema_minor 2)\n";
}

}  // namespace

int main(int argc, char** argv) {
  mocc::util::CliArgs args(argc, argv);
  if (args.get_bool("help", false)) {
    print_usage(args.program_name().c_str());
    return 0;
  }

  mocc::bench::SuiteOptions options;
  options.smoke = args.get_bool("smoke", false);
  options.only = split_csv(args.get_string("only", ""));
  options.spans = args.get_bool("spans", false);
  const std::string out_path = args.get_string("out", "BENCH_results.json");
  const bool print = args.get_bool("print", false);
  const std::string trace_path = args.get_string("trace", "");
  const auto unused = args.unused();
  if (!unused.empty()) {
    std::cerr << "unknown flag --" << unused.front() << " (try --help)\n";
    return 2;
  }
  for (const auto& name : options.only) {
    static const std::vector<std::string> known = {
        "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11"};
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::cerr << "unknown experiment '" << name << "' (expected E1..E11)\n";
      return 2;
    }
  }

  const auto records = mocc::bench::run_suite(options);

  {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 1;
    }
    mocc::bench::write_records_json(out, records, options);
  }
  std::cout << "wrote " << records.size() << " records ("
            << (options.smoke ? "smoke" : "full") << ") to " << out_path << "\n";

  if (!trace_path.empty()) {
    std::ofstream trace(trace_path, std::ios::binary);
    if (!trace) {
      std::cerr << "cannot open " << trace_path << " for writing\n";
      return 1;
    }
    mocc::bench::write_demo_trace(trace);
    std::cout << "wrote demo trace to " << trace_path << "\n";
  }

  if (print) {
    mocc::bench::print_records(std::cout, records);
  }
  return 0;
}
