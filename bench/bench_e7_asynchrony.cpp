// E7 — Asynchrony and reordering tolerance.
//
// Paper hook (§5, introduction): unlike Attiya-Welch's linearizable
// implementation, the Figure-6 protocol "does not make any assumptions
// about clock synchronization or the message delay". The delay sweep
// runs the protocols from a well-behaved constant-delay network to an
// adversarially reordering one and to a long-tailed exponential one.
// Expected shape: latency tracks the delay distribution's tail, message
// counts are invariant, the P5.x audit and Theorem-7 check pass under
// every model (correctness needs no timing assumptions at all).
//
// Counters: q_mean, u_mean, q_p99, u_p99, msg_per_op, audit_ok.
#include "common.hpp"

namespace mocc::bench {
namespace {

void Asynchrony(::benchmark::State& state, const std::string& protocol,
                const std::string& delay, const std::string& broadcast) {
  RunResult result;
  for (auto _ : state) {
    api::SystemConfig config;
    config.protocol = protocol;
    config.broadcast = broadcast;
    config.num_processes = 6;
    config.num_objects = 8;
    config.delay = delay;
    config.seed = 31 + state.iterations();
    protocols::WorkloadParams params;
    params.ops_per_process = 25;
    params.update_ratio = 0.5;
    params.footprint = 2;
    result = run_experiment(config, params, /*run_audit=*/true);
  }
  set_run_counters(state, result);
}

void register_all() {
  for (const char* protocol : {"mseq", "mlin"}) {
    for (const char* delay :
         {"constant", "lan", "wan", "uniform", "reorder", "exponential"}) {
      for (const char* broadcast : {"sequencer", "isis"}) {
        auto* b = ::benchmark::RegisterBenchmark(
            (std::string("E7/asynchrony/") + protocol + "/" + delay + "/" + broadcast)
                .c_str(),
            [protocol, delay, broadcast](::benchmark::State& state) {
              Asynchrony(state, protocol, delay, broadcast);
            });
        b->Iterations(1)->Unit(::benchmark::kMillisecond);
      }
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mocc::bench
