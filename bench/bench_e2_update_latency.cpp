// E2 — Update latency: one atomic broadcast, under both protocols and
// both broadcast algorithms.
//
// Paper hook (§5): updates cost exactly one atomic broadcast in Figure 4
// AND Figure 6 (actions A1/A2 are identical), so update latency should be
// indistinguishable between the two protocols and determined entirely by
// the broadcast algorithm: the fixed sequencer needs submit + fan-out
// (~2 delays, 1 for the sequencer's own updates); ISIS needs
// propose + proposal + final (~3 delays and a max over replicas), so
// ISIS updates are slower and degrade faster with n.
//
// Counters (virtual ticks): u_mean, u_p99.
#include "common.hpp"

namespace mocc::bench {
namespace {

void UpdateLatency(::benchmark::State& state, const std::string& protocol,
                   const std::string& broadcast) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RunResult result;
  for (auto _ : state) {
    api::SystemConfig config;
    config.protocol = protocol;
    config.broadcast = broadcast;
    config.num_processes = n;
    config.num_objects = 16;
    config.delay = "lan";
    config.seed = 7 + state.iterations();
    protocols::WorkloadParams params;
    params.ops_per_process = 40;
    params.update_ratio = 1.0;  // updates only
    params.footprint = 2;
    result = run_experiment(config, params);
  }
  set_run_counters(state, result);
}

void register_all() {
  for (const char* protocol : {"mseq", "mlin"}) {
    for (const char* broadcast : {"sequencer", "isis"}) {
      auto* b = ::benchmark::RegisterBenchmark(
          (std::string("E2/update_latency/") + protocol + "/" + broadcast).c_str(),
          [protocol, broadcast](::benchmark::State& state) {
            UpdateLatency(state, protocol, broadcast);
          });
      b->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
      b->Iterations(1)->Unit(::benchmark::kMillisecond);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mocc::bench
