// E9 — Hot-path batching: messages-per-update vs batch size.
//
// The sequencer group-commit assigns one contiguous position block per
// batch and fans the whole batch out as ONE frame; link-level coalescing
// packs multiple wire messages per reliable-link frame on top. This
// sweep measures the collapse against the unbatched baseline on the
// same lockstep update-only workload: msg_per_op falls from ~n toward
// 1 + (n-1)/B while audit_ok must stay 1 — batching moves the price,
// never the guarantees. u_mean shows the latency side of the trade
// (the bounded flush wait).
//
// Counters: u_mean, u_p99, msg_per_op, bytes_per_op, tput,
// batch_assigns, batch_flushes, audit_ok.
#include "common.hpp"

#include "obs/trace.hpp"

namespace mocc::bench {
namespace {

void Batching(::benchmark::State& state, std::size_t batch, bool link_on) {
  RunResult result;
  obs::Registry batching;
  for (auto _ : state) {
    api::SystemConfig config;
    config.protocol = "mseq";
    config.broadcast = "sequencer";
    config.delay = "constant";
    config.num_processes = 16;
    config.num_objects = 8;
    config.seed = 77;
    if (batch > 1) {
      config.batching.abcast_batch_max = batch;
      // Above the sequencer's 20-tick local-response lead, as in run_e9:
      // its own update joins the round's foreign submissions.
      config.batching.abcast_batch_age = 24;
    }
    if (link_on) {
      config.reliable_link = true;
      config.link.initial_rto = 40;  // above the 20-tick constant RTT
      if (batch > 1) {
        config.batching.link_batch_items = 4;
        config.batching.link_batch_age = 3;
      }
    }
    protocols::WorkloadParams params;
    params.ops_per_process = 20;
    params.update_ratio = 1.0;
    params.footprint = 2;
    obs::RingBufferSink sink(kSpanRingCapacity);
    result = run_experiment(config, params, /*run_audit=*/true, &sink);
    batching = obs::Registry();
    register_batching_metrics(batching, sink);
  }
  set_run_counters(state, result);
  export_metrics(state, batching);
}

void register_all() {
  for (const bool link_on : {false, true}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}, std::size_t{16}}) {
      auto* b = ::benchmark::RegisterBenchmark(
          (std::string("E9/batching/") + (link_on ? "link" : "raw") + "/batch" +
           std::to_string(batch))
              .c_str(),
          [batch, link_on](::benchmark::State& state) {
            Batching(state, batch, link_on);
          });
      b->Iterations(1)->Unit(::benchmark::kMillisecond);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mocc::bench
