#include "experiments.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <utility>

#include "core/admissibility.hpp"
#include "core/fast_check.hpp"
#include "core/generate.hpp"
#include "exec/verify.hpp"
#include "obs/analysis.hpp"
#include "obs/json.hpp"
#include "txn/generate.hpp"
#include "txn/reduction.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace mocc::bench {

RunResult run_experiment(const api::SystemConfig& config,
                         const protocols::WorkloadParams& params, bool run_audit,
                         obs::TraceSink* trace) {
  api::System system(config);
  if (trace != nullptr) system.set_trace_sink(trace);
  RunResult result;
  result.report = system.run_workload(params);
  result.virtual_time = system.now();
  result.traffic = system.traffic();
  result.history_size = system.history().size();
  if (run_audit && system.supports_audit()) {
    result.audit_ran = true;
    result.audit_ok = system.audit().ok;
  }
  if (const fault::FaultPlan* plan = system.fault_plan()) {
    result.faults = plan->stats();
  }
  result.link = system.link_stats();
  result.link_failures = system.link_failures().size();
  result.backlog = system.backlog();
  return result;
}

void register_latency_metrics(obs::Registry& registry,
                              const protocols::WorkloadReport& report) {
  registry.counter("queries").set(report.queries);
  registry.counter("updates").set(report.updates);
  auto& q = registry.histogram("q", kLatencyLo, kLatencyHi, kLatencyBuckets);
  for (const double sample : report.query_latency.samples()) q.add(sample);
  auto& u = registry.histogram("u", kLatencyLo, kLatencyHi, kLatencyBuckets);
  for (const double sample : report.update_latency.samples()) u.add(sample);
}

void register_run_metrics(obs::Registry& registry, const RunResult& result) {
  register_latency_metrics(registry, result.report);
  registry.counter("mops").set(result.history_size);
  registry.counter("msgs").set(result.traffic.messages);
  registry.counter("bytes").set(result.traffic.bytes);
  registry.gauge("virtual_time").set(static_cast<double>(result.virtual_time));
  const double ops =
      static_cast<double>(result.report.queries + result.report.updates);
  const double ticks = static_cast<double>(std::max<sim::SimTime>(result.virtual_time, 1));
  registry.gauge("msg_per_op")
      .set(ops == 0 ? 0.0 : static_cast<double>(result.traffic.messages) / ops);
  registry.gauge("bytes_per_op")
      .set(ops == 0 ? 0.0 : static_cast<double>(result.traffic.bytes) / ops);
  registry.gauge("tput").set(ops * 1000.0 / ticks);
  if (result.audit_ran) {
    registry.gauge("audit_ok").set(result.audit_ok ? 1.0 : 0.0);
  }
}

void register_fault_metrics(obs::Registry& registry, const RunResult& result) {
  registry.counter("fault_drops").set(result.faults.drops);
  registry.counter("fault_duplicates").set(result.faults.duplicates);
  registry.counter("fault_delay_spikes").set(result.faults.delay_spikes);
  registry.counter("fault_partition_drops").set(result.faults.partition_drops);
  registry.counter("link_data").set(result.link.data_sent);
  registry.counter("link_retransmits").set(result.link.retransmits);
  registry.counter("link_acks").set(result.link.acks_sent);
  registry.counter("link_dedup").set(result.link.duplicates_suppressed);
  // mocc-lint: allow(trace-registry): metric counter sharing the trace event's name; nothing here emits a trace record
  registry.counter("link_exhausted").set(result.link.exhausted);
  registry.counter("link_failures").set(result.link_failures);
  const double data = static_cast<double>(std::max<std::uint64_t>(result.link.data_sent, 1));
  registry.gauge("retransmit_rate")
      .set(static_cast<double>(result.link.retransmits) / data);
}

void register_span_metrics(obs::Registry& registry,
                           const obs::RingBufferSink& sink,
                           const RunResult& result) {
  sink.export_metrics(registry);
  registry.gauge("sim_event_queue_depth")
      .set(static_cast<double>(result.backlog.queue_depth));
  registry.gauge("link_retransmit_buffer_bytes")
      .set(static_cast<double>(result.backlog.link_buffer_bytes));
  auto& queue = registry.histogram("phase_queue", kLatencyLo, kLatencyHi, kLatencyBuckets);
  auto& agree = registry.histogram("phase_agree", kLatencyLo, kLatencyHi, kLatencyBuckets);
  auto& lock = registry.histogram("phase_lock", kLatencyLo, kLatencyHi, kLatencyBuckets);
  auto& net = registry.histogram("phase_net", kLatencyLo, kLatencyHi, kLatencyBuckets);
  obs::TraceFile trace;
  trace.has_header = true;
  trace.events_total = sink.total();
  trace.events_dropped = sink.dropped();
  trace.spans_total = sink.spans_total();
  trace.spans_dropped = sink.spans_dropped();
  MOCC_ASSERT_MSG(trace.events_dropped == 0 && trace.spans_dropped == 0,
                  "span-enabled bench run overflowed its trace ring; raise "
                  "kSpanRingCapacity");
  trace.events = sink.events();
  trace.spans = sink.spans();
  obs::Forest forest;
  std::string error;
  const bool well_formed = obs::build_forest(trace, &forest, &error);
  MOCC_ASSERT_MSG(well_formed, error.c_str());
  for (const obs::MOpLatency& mop : obs::attribute_latency(forest)) {
    queue.add(static_cast<double>(mop.phases.queue));
    agree.add(static_cast<double>(mop.phases.agree));
    lock.add(static_cast<double>(mop.phases.lock));
    net.add(static_cast<double>(mop.phases.net));
  }
}

void register_batching_metrics(obs::Registry& registry,
                               const obs::RingBufferSink& sink) {
  // Batch sizes live in [1, batch_max]; 64 one-wide buckets cover every
  // configuration the sweep (and any sane deployment of the knobs) uses.
  auto& assign_size = registry.histogram("batch_assign_size", 0.0, 64.0, 64);
  auto& flush_items = registry.histogram("batch_flush_items", 0.0, 64.0, 64);
  std::uint64_t assigns = 0;
  std::uint64_t flushes = 0;
  for (const obs::TraceEvent& event : sink.events()) {
    if (event.type == obs::TraceEventType::kBatchAssign) {
      ++assigns;
      assign_size.add(static_cast<double>(event.arg));
    } else if (event.type == obs::TraceEventType::kBatchFlush) {
      ++flushes;
      flush_items.add(static_cast<double>(event.arg));
    }
  }
  // mocc-lint: allow(trace-registry): metric counters named after the trace events they aggregate; nothing here emits a trace record
  registry.counter("batch_assigns").set(assigns);
  registry.counter("batch_flushes").set(flushes);
}

void register_streaming_metrics(obs::Registry& registry,
                                const obs::StreamingAuditor& auditor) {
  auditor.export_metrics(registry);
}

bool experiment_selected(const SuiteOptions& options, std::string_view experiment) {
  if (options.only.empty()) return true;
  return std::find(options.only.begin(), options.only.end(), experiment) !=
         options.only.end();
}

namespace {

std::string pct(double ratio) {
  return std::to_string(static_cast<int>(ratio * 100.0 + 0.5));
}

std::map<std::string, std::string> sim_config_map(const api::SystemConfig& config,
                                                  const protocols::WorkloadParams& params) {
  return {
      {"protocol", config.protocol},
      {"broadcast", config.broadcast},
      {"delay", config.delay},
      {"processes", std::to_string(config.num_processes)},
      {"objects", std::to_string(config.num_objects)},
      {"seed", std::to_string(config.seed)},
      {"ops_per_process", std::to_string(params.ops_per_process)},
      {"update_ratio_pct", pct(params.update_ratio)},
      {"footprint", std::to_string(params.footprint)},
  };
}

ExperimentRecord sim_record(std::string experiment, std::string name,
                            const api::SystemConfig& config,
                            const protocols::WorkloadParams& params, bool run_audit,
                            bool spans = false) {
  ExperimentRecord record;
  record.experiment = std::move(experiment);
  record.name = std::move(name);
  record.config = sim_config_map(config, params);
  if (spans) {
    api::SystemConfig traced = config;
    traced.backlog_sample_interval = kBacklogSampleInterval;
    obs::RingBufferSink sink(kSpanRingCapacity);
    const RunResult result = run_experiment(traced, params, run_audit, &sink);
    register_run_metrics(record.metrics, result);
    register_span_metrics(record.metrics, sink, result);
    record.traffic = result.traffic;
    if (result.audit_ran) {
      record.audit = result.audit_ok ? ExperimentRecord::Audit::kOk
                                     : ExperimentRecord::Audit::kFailed;
    }
    return record;
  }
  const RunResult result = run_experiment(config, params, run_audit);
  register_run_metrics(record.metrics, result);
  record.traffic = result.traffic;
  if (result.audit_ran) {
    record.audit = result.audit_ok ? ExperimentRecord::Audit::kOk
                                   : ExperimentRecord::Audit::kFailed;
  }
  return record;
}

}  // namespace

std::vector<ExperimentRecord> run_e1(const SuiteOptions& options) {
  const std::vector<std::string> protocols =
      options.smoke ? std::vector<std::string>{"mseq", "mlin"}
                    : std::vector<std::string>{"mseq", "mlin", "mlin-narrow",
                                               "mlin-bcastq"};
  const std::vector<std::string> delays =
      options.smoke ? std::vector<std::string>{"lan"}
                    : std::vector<std::string>{"lan", "wan"};
  const std::vector<std::size_t> ns =
      options.smoke ? std::vector<std::size_t>{2, 4}
                    : std::vector<std::size_t>{2, 4, 8, 16, 32};
  std::vector<ExperimentRecord> records;
  for (const auto& protocol : protocols) {
    for (const auto& delay : delays) {
      for (const std::size_t n : ns) {
        api::SystemConfig config;
        config.protocol = protocol;
        config.num_processes = n;
        config.num_objects = 16;
        config.delay = delay;
        config.seed = 42;
        protocols::WorkloadParams params;
        params.ops_per_process = options.smoke ? 10 : 40;
        params.update_ratio = 0.2;  // query-heavy: the contrast under test
        params.footprint = 2;
        records.push_back(sim_record(
            "E1", "E1/query_latency/" + protocol + "/" + delay + "/n" + std::to_string(n),
            config, params, /*run_audit=*/false, options.spans));
      }
    }
  }
  return records;
}

std::vector<ExperimentRecord> run_e2(const SuiteOptions& options) {
  const std::vector<std::size_t> ns =
      options.smoke ? std::vector<std::size_t>{2, 4}
                    : std::vector<std::size_t>{2, 4, 8, 16, 32};
  std::vector<ExperimentRecord> records;
  for (const std::string protocol : {"mseq", "mlin"}) {
    for (const std::string broadcast : {"sequencer", "isis"}) {
      for (const std::size_t n : ns) {
        api::SystemConfig config;
        config.protocol = protocol;
        config.broadcast = broadcast;
        config.num_processes = n;
        config.num_objects = 16;
        config.delay = "lan";
        config.seed = 7;
        protocols::WorkloadParams params;
        params.ops_per_process = options.smoke ? 10 : 40;
        params.update_ratio = 1.0;  // updates only
        params.footprint = 2;
        records.push_back(sim_record(
            "E2",
            "E2/update_latency/" + protocol + "/" + broadcast + "/n" + std::to_string(n),
            config, params, /*run_audit=*/false, options.spans));
      }
    }
  }
  return records;
}

std::vector<ExperimentRecord> run_e3(const SuiteOptions& options) {
  const std::vector<std::string> protocols =
      options.smoke
          ? std::vector<std::string>{"mseq", "mlin", "locking"}
          : std::vector<std::string>{"mseq", "mlin", "mlin-narrow", "mlin-bcastq",
                                     "locking", "aggregate"};
  const std::vector<double> ratios = options.smoke ? std::vector<double>{0.0, 0.5}
                                                   : std::vector<double>{0.0, 0.2, 0.5, 1.0};
  const std::vector<std::size_t> ns = options.smoke
                                          ? std::vector<std::size_t>{2, 4}
                                          : std::vector<std::size_t>{2, 4, 8, 16};
  std::vector<ExperimentRecord> records;
  for (const auto& protocol : protocols) {
    for (const double ratio : ratios) {
      for (const std::size_t n : ns) {
        api::SystemConfig config;
        config.protocol = protocol;
        config.num_processes = n;
        config.num_objects = 16;
        config.delay = "lan";
        config.seed = 11;
        protocols::WorkloadParams params;
        params.ops_per_process = options.smoke ? 10 : 40;
        params.update_ratio = ratio;
        params.footprint = 2;
        records.push_back(sim_record(
            "E3", "E3/messages/" + protocol + "/u" + pct(ratio) + "/n" + std::to_string(n),
            config, params, /*run_audit=*/false));
      }
    }
  }
  return records;
}

namespace {

core::GeneratorParams e4_params(std::size_t mops) {
  core::GeneratorParams params;
  params.num_mops = mops;
  // Few processes + few objects + many writers = weakly constrained
  // orders with many interchangeable writes: the hard regime.
  params.num_processes = 3;
  params.num_objects = 2;
  params.write_probability = 0.8;
  params.min_ops_per_mop = 1;
  params.max_ops_per_mop = 2;
  return params;
}

struct E4Variant {
  const char* slug;  // "msc/free/memo+rw"
  core::Condition condition;
  bool free_family;
  bool memoize;
  bool rw_prune;
};

/// Averages the exact checker over `instances` generated histories. The
/// rng is seeded per record so every record is deterministic in
/// isolation (running with --only E4 yields the same numbers as the full
/// suite).
ExperimentRecord exact_checker_record(const E4Variant& variant, std::size_t mops,
                                      std::size_t instances) {
  ExperimentRecord record;
  record.experiment = "E4";
  record.name = std::string("E4/exact/") + variant.slug + "/m" + std::to_string(mops);
  record.config = {
      {"condition",
       variant.condition == core::Condition::kMSequentialConsistency ? "msc" : "mlin"},
      {"family", variant.free_family ? "free" : "admissible"},
      {"memoize", variant.memoize ? "1" : "0"},
      {"rw_prune", variant.rw_prune ? "1" : "0"},
      {"mops", std::to_string(mops)},
      {"instances", std::to_string(instances)},
      {"seed", "2025"},
  };
  util::Rng rng(2025);
  std::uint64_t states_total = 0;
  std::uint64_t admissible = 0;
  bool completed = true;
  for (std::size_t i = 0; i < instances; ++i) {
    const auto h = variant.free_family
                       ? core::generate_free_history(e4_params(mops), rng)
                       : core::generate_admissible_history(e4_params(mops), rng);
    core::AdmissibilityOptions checker;
    checker.use_rw_pruning = variant.rw_prune;
    checker.use_memoization = variant.memoize;
    checker.max_states = 50'000'000;
    const auto result = core::check_condition(h, variant.condition, checker);
    states_total += result.states_visited;
    admissible += result.admissible ? 1 : 0;
    completed = completed && result.completed;
  }
  record.metrics.counter("instances").set(instances);
  record.metrics.counter("states_total").set(states_total);
  record.metrics.counter("admissible").set(admissible);
  record.metrics.gauge("states_mean")
      .set(static_cast<double>(states_total) / static_cast<double>(instances));
  record.metrics.gauge("completed").set(completed ? 1.0 : 0.0);
  return record;
}

/// Theorem-2 instances: random interleaved schedules pushed through the
/// reduction — checking the resulting history for m-linearizability IS
/// deciding strict view serializability, the problem the paper reduces
/// from.
ExperimentRecord reduction_record(bool prune, std::size_t txns, std::size_t instances) {
  ExperimentRecord record;
  record.experiment = "E4";
  record.name = std::string("E4/reduction/mlin/") + (prune ? "pruned" : "raw") + "/t" +
                std::to_string(txns);
  record.config = {
      {"txns", std::to_string(txns)},
      {"prune", prune ? "1" : "0"},
      {"instances", std::to_string(instances)},
      {"seed", "4242"},
  };
  util::Rng rng(4242);
  txn::ScheduleParams params;
  params.num_txns = txns;
  params.num_entities = 2;
  params.min_actions_per_txn = 2;
  params.max_actions_per_txn = 3;
  params.write_probability = 0.7;
  std::uint64_t states_total = 0;
  std::uint64_t admissible = 0;
  for (std::size_t i = 0; i < instances; ++i) {
    txn::Schedule schedule = txn::generate_interleaved_schedule(params, rng);
    auto reduced = txn::reduce_to_history(schedule);
    while (!reduced.feasible) {
      schedule = txn::generate_interleaved_schedule(params, rng);
      reduced = txn::reduce_to_history(schedule);
    }
    core::AdmissibilityOptions checker;
    checker.use_rw_pruning = prune;
    checker.use_memoization = prune;
    checker.max_states = 50'000'000;
    const auto result = core::check_condition(
        reduced.history, core::Condition::kMLinearizability, checker);
    states_total += result.states_visited;
    admissible += result.admissible ? 1 : 0;
  }
  record.metrics.counter("instances").set(instances);
  record.metrics.counter("states_total").set(states_total);
  record.metrics.counter("admissible").set(admissible);
  record.metrics.gauge("states_mean")
      .set(static_cast<double>(states_total) / static_cast<double>(instances));
  return record;
}

}  // namespace

std::vector<ExperimentRecord> run_e4(const SuiteOptions& options) {
  // The memoization and ~rw-pruning ablation is split so each lever's
  // contribution is measurable on its own.
  const E4Variant variants[] = {
      {"msc/free/memo+rw", core::Condition::kMSequentialConsistency, true, true, true},
      {"msc/free/memo-only", core::Condition::kMSequentialConsistency, true, true,
       false},
      {"msc/free/rw-only", core::Condition::kMSequentialConsistency, true, false, true},
      {"msc/free/raw", core::Condition::kMSequentialConsistency, true, false, false},
      {"mlin/free/memo+rw", core::Condition::kMLinearizability, true, true, true},
      {"msc/admissible/memo+rw", core::Condition::kMSequentialConsistency, false, true,
       true},
  };
  const std::size_t instances = options.smoke ? 2 : 3;
  std::vector<ExperimentRecord> records;
  if (options.smoke) {
    for (const auto& variant : {variants[0], variants[4]}) {
      for (const std::size_t mops : {6, 8}) {
        records.push_back(exact_checker_record(variant, mops, instances));
      }
    }
    records.push_back(reduction_record(/*prune=*/true, /*txns=*/4, instances));
    return records;
  }
  for (const auto& variant : variants) {
    for (const std::size_t mops : {6, 10, 14}) {
      records.push_back(exact_checker_record(variant, mops, instances));
    }
  }
  for (const std::size_t txns : {4, 8, 12}) {
    records.push_back(reduction_record(/*prune=*/true, txns, instances));
  }
  for (const std::size_t txns : {4, 8}) {
    records.push_back(reduction_record(/*prune=*/false, txns, instances));
  }
  return records;
}

namespace {

/// Protocol-generated history + its recorded ~ww order (E5 input).
struct Recorded {
  core::History history;
  util::BitRelation ww;
};

Recorded record_history(std::size_t total_ops) {
  api::SystemConfig config;
  config.protocol = "mlin";
  config.num_processes = 4;
  config.num_objects = 8;
  config.delay = "lan";
  config.seed = 99;
  api::System system(config);
  protocols::WorkloadParams params;
  params.ops_per_process = total_ops / config.num_processes;
  params.update_ratio = 0.5;
  params.footprint = 2;
  system.run_workload(params);
  return Recorded{system.history(), system.recorder().build_ww_order()};
}

std::map<std::string, std::string> e5_config_map(std::size_t target) {
  return {
      {"protocol", "mlin"},
      {"processes", "4"},
      {"objects", "8"},
      {"seed", "99"},
      {"target_mops", std::to_string(target)},
  };
}

}  // namespace

std::vector<ExperimentRecord> run_e5(const SuiteOptions& options) {
  std::vector<ExperimentRecord> records;
  const std::vector<std::size_t> fast_sizes =
      options.smoke ? std::vector<std::size_t>{16, 32}
                    : std::vector<std::size_t>{16, 64, 256};
  for (const std::size_t target : fast_sizes) {
    const Recorded recorded = record_history(target);
    ExperimentRecord record;
    record.experiment = "E5";
    record.name = "E5/theorem7_poly/m" + std::to_string(target);
    record.config = e5_config_map(target);
    const auto result = core::fast_check_condition(
        recorded.history, core::Condition::kMLinearizability, recorded.ww,
        core::Constraint::kWW);
    record.metrics.counter("mops").set(recorded.history.size());
    record.metrics.gauge("constraint_holds").set(result.constraint_holds ? 1.0 : 0.0);
    record.metrics.gauge("legal").set(result.legal ? 1.0 : 0.0);
    record.metrics.gauge("admissible").set(result.admissible ? 1.0 : 0.0);
    records.push_back(std::move(record));
  }
  const std::vector<std::pair<bool, std::vector<std::size_t>>> exact_sweeps = {
      {true, options.smoke ? std::vector<std::size_t>{16}
                           : std::vector<std::size_t>{16, 64, 256}},
      {false, options.smoke ? std::vector<std::size_t>{16}
                            : std::vector<std::size_t>{16, 24}},
  };
  for (const auto& [prune, sizes] : exact_sweeps) {
    for (const std::size_t target : sizes) {
      const Recorded recorded = record_history(target);
      ExperimentRecord record;
      record.experiment = "E5";
      record.name = std::string("E5/exact_") + (prune ? "pruned" : "raw") + "/m" +
                    std::to_string(target);
      record.config = e5_config_map(target);
      record.config["prune"] = prune ? "1" : "0";
      core::AdmissibilityOptions checker;
      checker.use_rw_pruning = prune;
      checker.use_memoization = prune;
      checker.max_states = 100'000'000;
      // The exact checker gets the same information (base order + ~ww).
      auto base =
          core::base_order(recorded.history, core::Condition::kMLinearizability);
      base.merge(recorded.ww);
      const auto result = core::check_admissible(recorded.history, base, checker);
      record.metrics.counter("mops").set(recorded.history.size());
      record.metrics.counter("states").set(result.states_visited);
      record.metrics.gauge("admissible").set(result.admissible ? 1.0 : 0.0);
      record.metrics.gauge("completed").set(result.completed ? 1.0 : 0.0);
      records.push_back(std::move(record));
    }
  }
  return records;
}

std::vector<ExperimentRecord> run_e6(const SuiteOptions& options) {
  std::vector<ExperimentRecord> records;
  const auto run_point = [&](const std::string& protocol, std::size_t objects,
                             std::size_t footprint, const std::string& name) {
    api::SystemConfig config;
    config.protocol = protocol;
    config.num_processes = options.smoke ? 4 : 8;
    config.num_objects = objects;
    config.delay = "lan";
    config.seed = 5;
    protocols::WorkloadParams params;
    params.ops_per_process = options.smoke ? 8 : 30;
    params.update_ratio = 0.5;
    params.footprint = footprint;
    records.push_back(sim_record("E6", name, config, params, /*run_audit=*/false));
  };
  if (options.smoke) {
    for (const std::string protocol : {"mseq", "aggregate"}) {
      for (const std::size_t objects : {2, 8}) {
        run_point(protocol, objects, 2,
                  "E6/objects/" + protocol + "/x" + std::to_string(objects));
      }
    }
    for (const std::size_t footprint : {1, 4}) {
      run_point("locking", 32, footprint,
                "E6/footprint/locking/f" + std::to_string(footprint));
    }
    return records;
  }
  for (const std::string protocol : {"mseq", "mlin", "locking", "aggregate"}) {
    // Concurrency sweep: more objects = less contention; the aggregate
    // strawman cannot exploit it.
    for (const std::size_t objects : {2, 8, 32}) {
      run_point(protocol, objects, 2,
                "E6/objects/" + protocol + "/x" + std::to_string(objects));
    }
    // Footprint sweep: broadcast pays one abcast regardless; 2PL pays
    // one lock round trip per object.
    for (const std::size_t footprint : {1, 2, 4, 8}) {
      run_point(protocol, 32, footprint,
                "E6/footprint/" + protocol + "/f" + std::to_string(footprint));
    }
  }
  return records;
}

std::vector<ExperimentRecord> run_e7(const SuiteOptions& options) {
  const std::vector<std::string> protocols =
      options.smoke ? std::vector<std::string>{"mlin"}
                    : std::vector<std::string>{"mseq", "mlin"};
  const std::vector<std::string> delays =
      options.smoke ? std::vector<std::string>{"lan", "reorder"}
                    : std::vector<std::string>{"constant", "lan", "wan", "uniform",
                                               "reorder", "exponential"};
  const std::vector<std::string> broadcasts =
      options.smoke ? std::vector<std::string>{"sequencer"}
                    : std::vector<std::string>{"sequencer", "isis"};
  std::vector<ExperimentRecord> records;
  for (const auto& protocol : protocols) {
    for (const auto& delay : delays) {
      for (const auto& broadcast : broadcasts) {
        api::SystemConfig config;
        config.protocol = protocol;
        config.broadcast = broadcast;
        config.num_processes = options.smoke ? 4 : 6;
        config.num_objects = 8;
        config.delay = delay;
        config.seed = 31;
        protocols::WorkloadParams params;
        params.ops_per_process = options.smoke ? 8 : 25;
        params.update_ratio = 0.5;
        params.footprint = 2;
        records.push_back(
            sim_record("E7", "E7/asynchrony/" + protocol + "/" + delay + "/" + broadcast,
                       config, params, /*run_audit=*/true));
      }
    }
  }
  return records;
}

std::vector<ExperimentRecord> run_e8(const SuiteOptions& options) {
  // Message overhead and delivery latency versus fault rate. Each
  // protocol contributes one fault-free baseline with the link DETACHED
  // (drop_pct=0, link=off — the pre-fault stack, byte-identical traffic)
  // plus the reliable-link stack swept over drop rates; drop_pct=0 with
  // link=on isolates the link's own ack overhead. Audits run on every
  // point: the consistency conditions must hold at every fault rate.
  const std::vector<std::string> protocols =
      options.smoke ? std::vector<std::string>{"mlin"}
                    : std::vector<std::string>{"mseq", "mlin"};
  const std::vector<int> drop_pcts = options.smoke
                                         ? std::vector<int>{0, 5}
                                         : std::vector<int>{0, 2, 5, 10};
  std::vector<ExperimentRecord> records;
  for (const auto& protocol : protocols) {
    api::SystemConfig base;
    base.protocol = protocol;
    base.num_processes = options.smoke ? 3 : 4;
    base.num_objects = 8;
    base.delay = "lan";
    base.seed = 77;
    // RTO above the worst-case lan RTT (2x uniform[5,15] = 30 ticks):
    // without this every frame is spuriously retransmitted once and the
    // drop-rate signal drowns in timeout noise.
    base.link.initial_rto = 40;
    protocols::WorkloadParams params;
    params.ops_per_process = options.smoke ? 8 : 25;
    params.update_ratio = 0.5;
    params.footprint = 2;

    auto push = [&](const api::SystemConfig& config, int drop_pct, bool link_on) {
      ExperimentRecord record;
      record.experiment = "E8";
      record.name = "E8/faults/" + protocol + "/drop" + std::to_string(drop_pct) +
                    (link_on ? "/link" : "/raw");
      record.config = sim_config_map(config, params);
      record.config["drop_pct"] = std::to_string(drop_pct);
      record.config["dup_pct"] = link_on ? "5" : "0";
      record.config["link"] = link_on ? "on" : "off";
      api::SystemConfig traced = config;
      obs::RingBufferSink sink(kSpanRingCapacity);
      if (options.spans) traced.backlog_sample_interval = kBacklogSampleInterval;
      const RunResult result = run_experiment(
          traced, params, /*run_audit=*/true, options.spans ? &sink : nullptr);
      register_run_metrics(record.metrics, result);
      register_fault_metrics(record.metrics, result);
      if (options.spans) register_span_metrics(record.metrics, sink, result);
      record.traffic = result.traffic;
      if (result.audit_ran) {
        record.audit = result.audit_ok ? ExperimentRecord::Audit::kOk
                                       : ExperimentRecord::Audit::kFailed;
      }
      records.push_back(std::move(record));
    };

    // Baseline: the pre-fault stack (no injector, no link).
    push(base, 0, /*link_on=*/false);

    for (const int drop_pct : drop_pcts) {
      api::SystemConfig config = base;
      config.reliable_link = true;
      config.faults.seed = base.seed ^ 0x9e3779b97f4a7c15ULL;
      config.faults.default_link.drop_rate = drop_pct / 100.0;
      config.faults.default_link.duplicate_rate = 0.05;
      push(config, drop_pct, /*link_on=*/true);
    }
  }
  return records;
}

std::vector<ExperimentRecord> run_e9(const SuiteOptions& options) {
  // Hot-path batching: the sequencer group-commit swept over batch
  // sizes against the unbatched baseline, on two stacks — "raw" (no
  // link: pure abcast message complexity, E3-style) and "link" (the
  // reliable link, coalescing on whenever the abcast batches). Every
  // point drives the same closed-loop update-only workload in lockstep
  // ("constant" delay), so batches genuinely fill: messages-per-update
  // collapses from ~n toward 1 + (n-1)/B while the audit must stay
  // green. The latency price of the flush triggers shows in u_mean
  // (and, under --spans, in the phase histograms): batching trades a
  // bounded flush wait for the message drop.
  const std::size_t n = 16;
  const std::vector<std::size_t> batch_sizes =
      options.smoke ? std::vector<std::size_t>{1, 16}
                    : std::vector<std::size_t>{1, 4, 8, 16};
  protocols::WorkloadParams params;
  params.ops_per_process = options.smoke ? 8 : 20;
  params.update_ratio = 1.0;
  params.footprint = 2;
  std::vector<ExperimentRecord> records;
  for (const bool link_on : {false, true}) {
    for (const std::size_t batch : batch_sizes) {
      api::SystemConfig config;
      config.protocol = "mseq";
      config.broadcast = "sequencer";
      config.delay = "constant";
      config.num_processes = n;
      config.num_objects = 8;
      config.seed = 77;
      if (batch > 1) {
        config.batching.abcast_batch_max = batch;
        // Above the 20-tick skew between the sequencer's local response
        // and the foreign ones (local deliveries skip the network, so
        // node 0 runs one constant-delay round-trip ahead): its own next
        // update waits for the round's foreign submissions instead of
        // age-flushing as a singleton block.
        config.batching.abcast_batch_age = 24;
      }
      if (link_on) {
        config.reliable_link = true;
        config.link.initial_rto = 40;  // above the 20-tick constant RTT
        if (batch > 1) {
          config.batching.link_batch_items = 4;
          config.batching.link_batch_age = 3;
        }
      }
      ExperimentRecord record;
      record.experiment = "E9";
      record.name = "E9/batching/" + std::string(link_on ? "link" : "raw") +
                    "/batch" + std::to_string(batch);
      record.config = sim_config_map(config, params);
      record.config["abcast_batch"] = std::to_string(batch);
      record.config["link_batch"] =
          std::to_string(config.batching.link_batch_items);
      record.config["link"] = link_on ? "on" : "off";
      api::SystemConfig traced = config;
      obs::RingBufferSink sink(kSpanRingCapacity);
      if (options.spans) traced.backlog_sample_interval = kBacklogSampleInterval;
      // The sink is attached unconditionally: the batch-size series is
      // read off batch_assign / batch_flush events. Tracing is
      // observation-only, so the execution bytes do not depend on it.
      const RunResult result =
          run_experiment(traced, params, /*run_audit=*/true, &sink);
      register_run_metrics(record.metrics, result);
      register_batching_metrics(record.metrics, sink);
      if (options.spans) register_span_metrics(record.metrics, sink, result);
      record.traffic = result.traffic;
      if (result.audit_ran) {
        record.audit = result.audit_ok ? ExperimentRecord::Audit::kOk
                                       : ExperimentRecord::Audit::kFailed;
      }
      records.push_back(std::move(record));
    }
  }
  return records;
}

void register_exec_metrics(obs::Registry& registry,
                           const exec::ExecResult& result,
                           bool include_wallclock) {
  // Every series registers unconditionally: a record with zero committed
  // m-operations (the all-abort corner) carries the same keys as a busy
  // one, with explicit zero counts — the schema-stability contract
  // register_latency_metrics established for empty latency classes.
  registry.counter("exec_committed").set(result.stats.committed);
  registry.counter("exec_abort_validation").set(result.stats.aborted_validation);
  registry.counter("exec_abort_lock").set(result.stats.aborted_lock);
  registry.counter("exec_abandoned").set(result.stats.abandoned);
  auto& retries = registry.histogram("exec_retries", 0.0, 64.0, 64);
  for (const auto& log : result.logs) {
    for (const exec::CommittedMop& mop : log) {
      retries.add(static_cast<double>(mop.attempts - 1));
    }
  }
  const std::uint64_t aborts =
      result.stats.aborted_validation + result.stats.aborted_lock;
  const std::uint64_t attempts = result.stats.committed + aborts;
  registry.gauge("exec_abort_rate")
      .set(attempts == 0 ? 0.0
                         : static_cast<double>(aborts) /
                               static_cast<double>(attempts));
  registry.gauge("exec_tput_mops")
      .set(include_wallclock
               ? static_cast<double>(result.stats.mops_per_sec()) / 1e6
               : 0.0);
}

std::vector<ExperimentRecord> run_e10(const SuiteOptions& options) {
  // The multicore engine: real threads committing via OCC against one
  // shared store, swept over thread count x (object count, skew)
  // contention legs at a fixed total m-operation budget, so every point
  // does the same work and the thread axis reads as scaling. Each
  // point's merged (epoch, tid) log is re-checked by the admissibility
  // stack; the verdict lands in the record's audit field. The fast
  // check + value coherence + replay invariants run everywhere; the
  // P5.x audit (quadratic in window size x objects) runs on the
  // high-contention legs, where validation aborts actually happen.
  //
  // Smoke mode keeps only the single-thread points: one worker commits
  // first-try in a deterministic order, so the record bytes — with the
  // wall-clock gauge pinned to zero — golden-test like every simulator
  // record. Multi-thread points carry measured wall-clock throughput
  // and scheduler-dependent abort counts, and are documented as exempt
  // from the byte-identity contract (docs/observability.md).
  struct Leg {
    const char* name;
    std::size_t objects;
    double zipf_skew;
    bool audit;
  };
  const Leg legs[] = {
      {"low", 4096, 0.0, false},
      {"high", 64, 0.9, true},
  };
  const std::vector<std::size_t> thread_counts =
      options.smoke ? std::vector<std::size_t>{1}
                    : std::vector<std::size_t>{1, 2, 4, 8};
  const std::size_t total_mops = options.smoke ? 2000 : 100000;

  std::vector<ExperimentRecord> records;
  for (const Leg& leg : legs) {
    for (const std::size_t threads : thread_counts) {
      exec::ExecConfig config;
      config.threads = threads;
      // Smoke shrinks the low-contention store so the per-window
      // snapshot ops (one write per object) stay proportionate to the
      // 2000-op budget.
      config.objects = options.smoke ? leg.objects / 8 : leg.objects;
      config.mops_per_thread = total_mops / threads;
      config.footprint = 4;
      config.query_ratio = 0.4;
      config.rmw_ratio = 0.5;
      config.zipf_skew = leg.zipf_skew;
      config.seed = 42;

      const exec::ExecResult result = exec::run(config);
      exec::VerifyOptions verify;
      verify.run_audit = leg.audit;
      const exec::VerifyReport verdict = exec::verify_execution(result, verify);

      ExperimentRecord record;
      record.experiment = "E10";
      record.name = std::string("E10/exec/") + leg.name + "/t" +
                    std::to_string(threads);
      record.config["threads"] = std::to_string(threads);
      record.config["objects"] = std::to_string(config.objects);
      record.config["mops_per_thread"] = std::to_string(config.mops_per_thread);
      record.config["footprint"] = std::to_string(config.footprint);
      record.config["query_ratio"] = "0.4";
      record.config["rmw_ratio"] = "0.5";
      record.config["zipf"] = leg.zipf_skew == 0.0 ? "0" : "0.9";
      record.config["seed"] = std::to_string(config.seed);
      record.config["p5_audit"] = leg.audit ? "on" : "off";
      register_exec_metrics(record.metrics, result,
                            /*include_wallclock=*/!options.smoke);
      record.metrics.counter("exec_verify_windows").set(verdict.windows);
      record.audit = verdict.ok ? ExperimentRecord::Audit::kOk
                                : ExperimentRecord::Audit::kFailed;
      records.push_back(std::move(record));
    }
  }
  return records;
}

std::vector<ExperimentRecord> run_e11(const SuiteOptions& options) {
  // Streaming-audit overhead on E1-shaped (clean) and E8-shaped (faulty,
  // reliable-link) runs. Three audit modes per shape: `off` is the
  // baseline with no trace sink at all, `stream` consumes the trace tap
  // online through a StreamingAuditor, `posthoc` captures the whole
  // trace in a ring and audits it after the run. Virtual-time metrics
  // are identical across modes by construction — the sink is
  // observation, never scheduling — so the records document that
  // invariant; the wall-clock cost lives in bench_e11_streaming.
  struct Shape {
    const char* name;
    bool faults;
  };
  const Shape shapes[] = {{"clean", false}, {"faults", true}};
  const char* modes[] = {"off", "stream", "posthoc"};
  std::vector<ExperimentRecord> records;
  for (const Shape& shape : shapes) {
    api::SystemConfig config;
    config.protocol = "mlin";
    config.num_processes = 3;
    config.num_objects = 8;
    config.delay = "lan";
    config.seed = 77;
    if (shape.faults) {
      config.reliable_link = true;
      config.link.initial_rto = 40;  // as in run_e8: no spurious timeouts
      config.faults.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
      config.faults.default_link.drop_rate = 0.05;
      config.faults.default_link.duplicate_rate = 0.05;
    }
    protocols::WorkloadParams params;
    params.ops_per_process = options.smoke ? 8 : 25;
    params.update_ratio = 0.5;
    params.footprint = 2;

    for (const char* mode : modes) {
      ExperimentRecord record;
      record.experiment = "E11";
      record.name = std::string("E11/streaming/") + shape.name + "/" + mode;
      record.config = sim_config_map(config, params);
      record.config["faults"] = shape.faults ? "on" : "off";
      record.config["audit_mode"] = mode;

      if (mode == std::string("stream")) {
        obs::StreamingAuditorOptions live;
        live.condition = core::Condition::kMLinearizability;
        live.window = 16;  // several cuts even at smoke scale
        obs::StreamingAuditor auditor(live);
        const RunResult result =
            run_experiment(config, params, /*run_audit=*/true, &auditor);
        auditor.finish();
        MOCC_ASSERT_MSG(!auditor.violated(),
                        "E11 streams a correct protocol; a violation here "
                        "is an auditor bug");
        register_run_metrics(record.metrics, result);
        register_streaming_metrics(record.metrics, auditor);
        record.traffic = result.traffic;
        if (result.audit_ran) {
          record.audit = result.audit_ok ? ExperimentRecord::Audit::kOk
                                         : ExperimentRecord::Audit::kFailed;
        }
      } else if (mode == std::string("posthoc")) {
        obs::RingBufferSink sink(kSpanRingCapacity);
        const RunResult result =
            run_experiment(config, params, /*run_audit=*/true, &sink);
        obs::TraceFile trace;
        trace.has_header = true;
        trace.events = sink.events();
        trace.spans = sink.spans();
        const obs::TraceAudit audit = obs::audit_from_trace(
            trace, core::Condition::kMLinearizability);
        register_run_metrics(record.metrics, result);
        record.metrics.gauge("posthoc_audit_ok").set(audit.ok ? 1.0 : 0.0);
        record.metrics.counter("posthoc_audit_mops").set(audit.mops);
        record.traffic = result.traffic;
        if (result.audit_ran) {
          record.audit = result.audit_ok ? ExperimentRecord::Audit::kOk
                                         : ExperimentRecord::Audit::kFailed;
        }
      } else {
        const RunResult result =
            run_experiment(config, params, /*run_audit=*/true);
        register_run_metrics(record.metrics, result);
        record.traffic = result.traffic;
        if (result.audit_ran) {
          record.audit = result.audit_ok ? ExperimentRecord::Audit::kOk
                                         : ExperimentRecord::Audit::kFailed;
        }
      }
      records.push_back(std::move(record));
    }
  }
  return records;
}

std::vector<ExperimentRecord> run_suite(const SuiteOptions& options) {
  using Runner = std::vector<ExperimentRecord> (*)(const SuiteOptions&);
  constexpr std::pair<const char*, Runner> kExperiments[] = {
      {"E1", run_e1}, {"E2", run_e2}, {"E3", run_e3},  {"E4", run_e4},
      {"E5", run_e5}, {"E6", run_e6}, {"E7", run_e7},  {"E8", run_e8},
      {"E9", run_e9}, {"E10", run_e10}, {"E11", run_e11},
  };
  std::vector<ExperimentRecord> records;
  for (const auto& [name, runner] : kExperiments) {
    if (!experiment_selected(options, name)) continue;
    auto batch = runner(options);
    records.insert(records.end(), std::make_move_iterator(batch.begin()),
                   std::make_move_iterator(batch.end()));
  }
  return records;
}

namespace {

const char* audit_label(ExperimentRecord::Audit audit) {
  switch (audit) {
    case ExperimentRecord::Audit::kOk:
      return "ok";
    case ExperimentRecord::Audit::kFailed:
      return "failed";
    case ExperimentRecord::Audit::kNotApplicable:
      return "n/a";
  }
  return "n/a";
}

void write_traffic(obs::JsonWriter& json, const sim::TrafficStats& traffic) {
  json.begin_object();
  json.field("messages", traffic.messages);
  json.field("bytes", traffic.bytes);
  json.key("by_kind");
  json.begin_array();
  // messages_by_kind and bytes_by_kind are filled together in
  // Simulator::send, but union the key sets anyway so a one-sided entry
  // can never be dropped silently.
  std::set<std::uint32_t> kinds;
  for (const auto& [kind, n] : traffic.messages_by_kind) kinds.insert(kind);
  for (const auto& [kind, n] : traffic.bytes_by_kind) kinds.insert(kind);
  for (const std::uint32_t kind : kinds) {
    json.begin_object();
    json.field("kind", kind);
    const auto messages = traffic.messages_by_kind.find(kind);
    const auto bytes = traffic.bytes_by_kind.find(kind);
    json.field("messages", messages == traffic.messages_by_kind.end()
                               ? std::uint64_t{0}
                               : messages->second);
    json.field("bytes",
               bytes == traffic.bytes_by_kind.end() ? std::uint64_t{0} : bytes->second);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

void write_records_json(std::ostream& out,
                        const std::vector<ExperimentRecord>& records,
                        const SuiteOptions& options) {
  obs::JsonWriter json(out, /*pretty=*/true);
  json.begin_object();
  json.field("schema_version", kBenchSchemaVersion);
  // Additive minor revision: the highest one whose names actually appear
  // in the record set (minor 5 = E11's streaming-audit series, minor 4 =
  // E10's exec-engine series, minor 3 = E9's batch-size series, minor 2
  // = span phase series, minor 1 = E8's fault/link metrics). Artifacts
  // using none — and their goldens — stay byte-identical to minor 0.
  const bool has_streaming_records =
      std::any_of(records.begin(), records.end(), [](const ExperimentRecord& r) {
        return r.metrics.counters().contains("audit_windows_passed");
      });
  const bool has_exec_records =
      std::any_of(records.begin(), records.end(), [](const ExperimentRecord& r) {
        return r.metrics.counters().contains("exec_committed");
      });
  const bool has_batching_records =
      std::any_of(records.begin(), records.end(), [](const ExperimentRecord& r) {
        return r.metrics.histograms().contains("batch_assign_size");
      });
  const bool has_span_records =
      std::any_of(records.begin(), records.end(), [](const ExperimentRecord& r) {
        return r.metrics.histograms().contains("phase_queue");
      });
  const bool has_fault_records =
      std::any_of(records.begin(), records.end(),
                  [](const ExperimentRecord& r) { return r.experiment == "E8"; });
  if (has_streaming_records) {
    json.field("schema_minor", kBenchSchemaMinorStreaming);
  } else if (has_exec_records) {
    json.field("schema_minor", kBenchSchemaMinorExec);
  } else if (has_batching_records) {
    json.field("schema_minor", kBenchSchemaMinorBatching);
  } else if (has_span_records) {
    json.field("schema_minor", kBenchSchemaMinorSpans);
  } else if (has_fault_records) {
    json.field("schema_minor", kBenchSchemaMinorFaults);
  }
  json.field("suite", "mocc-bench");
  json.field("mode", options.smoke ? "smoke" : "full");
  json.key("only");
  json.begin_array();
  for (const auto& name : options.only) json.value(name);
  json.end_array();
  json.key("records");
  json.begin_array();
  for (const auto& record : records) {
    json.begin_object();
    json.field("experiment", record.experiment);
    json.field("name", record.name);
    json.key("config");
    json.begin_object();
    for (const auto& [key, value] : record.config) json.field(key, value);
    json.end_object();
    record.metrics.write_json_fields(json);
    json.key("traffic");
    write_traffic(json, record.traffic);
    json.field("audit", audit_label(record.audit));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  MOCC_ASSERT(json.done());
  out << "\n";
}

void print_records(std::ostream& out, const std::vector<ExperimentRecord>& records) {
  // Group into contiguous per-experiment blocks (the suite emits them in
  // order), each rendered as one table over the union of metric names.
  std::size_t begin = 0;
  while (begin < records.size()) {
    std::size_t end = begin + 1;
    while (end < records.size() &&
           records[end].experiment == records[begin].experiment) {
      ++end;
    }
    std::set<std::string> counter_names;
    std::set<std::string> gauge_names;
    std::set<std::string> histogram_names;
    bool any_audit = false;
    for (std::size_t i = begin; i < end; ++i) {
      for (const auto& [name, counter] : records[i].metrics.counters()) {
        counter_names.insert(name);
      }
      for (const auto& [name, gauge] : records[i].metrics.gauges()) {
        gauge_names.insert(name);
      }
      for (const auto& [name, histogram] : records[i].metrics.histograms()) {
        histogram_names.insert(name);
      }
      any_audit = any_audit || records[i].audit != ExperimentRecord::Audit::kNotApplicable;
    }
    std::vector<std::string> headers = {"name"};
    for (const auto& name : counter_names) headers.push_back(name);
    for (const auto& name : gauge_names) headers.push_back(name);
    for (const auto& name : histogram_names) {
      headers.push_back(name + "_n");
      headers.push_back(name + "_mean");
      headers.push_back(name + "_p50");
      headers.push_back(name + "_p99");
    }
    if (any_audit) headers.push_back("audit");
    util::Table table(headers);
    for (std::size_t i = begin; i < end; ++i) {
      const auto& record = records[i];
      std::vector<std::string> row = {record.name};
      for (const auto& name : counter_names) {
        const auto& counters = record.metrics.counters();
        const auto it = counters.find(name);
        row.push_back(it == counters.end() ? "-" : util::Table::num(it->second.value()));
      }
      for (const auto& name : gauge_names) {
        const auto& gauges = record.metrics.gauges();
        const auto it = gauges.find(name);
        row.push_back(it == gauges.end() ? "-" : util::Table::num(it->second.value()));
      }
      for (const auto& name : histogram_names) {
        const auto& histograms = record.metrics.histograms();
        const auto it = histograms.find(name);
        if (it == histograms.end()) {
          row.insert(row.end(), {"-", "-", "-", "-"});
        } else {
          row.push_back(util::Table::num(it->second.count()));
          row.push_back(util::Table::num(it->second.mean()));
          row.push_back(util::Table::num(it->second.percentile(50.0)));
          row.push_back(util::Table::num(it->second.percentile(99.0)));
        }
      }
      if (any_audit) row.push_back(audit_label(record.audit));
      table.add_row(std::move(row));
    }
    out << "== " << records[begin].experiment << " ==\n" << table.render() << "\n";
    begin = end;
  }
}

void write_demo_trace(std::ostream& out) {
  obs::RingBufferSink sink(1 << 16);
  api::SystemConfig config;
  config.protocol = "mlin";
  config.num_processes = 3;
  config.num_objects = 4;
  config.delay = "lan";
  config.seed = 42;
  // Batching on, so the demo trace carries batch_assign / batch_flush
  // events and `trace_query --audit` verifies a batched history.
  config.batching.abcast_batch_max = 4;
  config.batching.abcast_batch_age = 6;
  config.batching.batch_queries = true;
  protocols::WorkloadParams params;
  params.ops_per_process = 4;
  params.update_ratio = 0.5;
  params.footprint = 2;
  run_experiment(config, params, /*run_audit=*/false, &sink);
  obs::write_trace_jsonl(out, sink);
}

}  // namespace mocc::bench
