// Shared helpers for the experiment benchmarks (E1-E7).
//
// Simulation experiments report *virtual-time* latencies and message
// counts through benchmark counters (wall time of a simulation is
// meaningless for the protocols); checker experiments (E4/E5) use
// google-benchmark's wall-clock timing directly.
#pragma once

#include <benchmark/benchmark.h>

#include <string>

#include "api/system.hpp"
#include "protocols/workload.hpp"

namespace mocc::bench {

struct RunResult {
  protocols::WorkloadReport report;
  sim::TrafficStats traffic;
  sim::SimTime virtual_time = 0;
  bool audit_ok = true;
  std::size_t history_size = 0;
};

/// Builds a system, drives the closed-loop workload, and collects the
/// metrics every simulation experiment reports.
inline RunResult run_experiment(const api::SystemConfig& config,
                                const protocols::WorkloadParams& params,
                                bool run_audit = false) {
  api::System system(config);
  RunResult result;
  result.report = system.run_workload(params);
  result.traffic = system.traffic();
  result.history_size = system.history().size();
  if (run_audit && system.supports_audit()) {
    result.audit_ok = system.audit().ok;
  }
  return result;
}

/// Standard latency counters from a workload report.
inline void set_latency_counters(::benchmark::State& state,
                                 const protocols::WorkloadReport& report) {
  if (!report.query_latency.empty()) {
    state.counters["q_mean"] = report.query_latency.mean();
    state.counters["q_p99"] = report.query_latency.percentile(99.0);
  }
  if (!report.update_latency.empty()) {
    state.counters["u_mean"] = report.update_latency.mean();
    state.counters["u_p99"] = report.update_latency.percentile(99.0);
  }
}

}  // namespace mocc::bench
