// Shared helpers for the google-benchmark experiment binaries (E1-E10).
//
// The experiment configurations, run helpers, and metric definitions
// live in experiments.{hpp,cpp} (shared with the bench_report artifact
// driver); this header only adapts an obs::Registry to google-benchmark
// custom counters. Simulation experiments report *virtual-time*
// latencies and message counts (wall time of a simulation is
// meaningless for the protocols); checker experiments (E4/E5) use
// google-benchmark's wall-clock timing directly.
#pragma once

#include <benchmark/benchmark.h>

#include <string>

#include "experiments.hpp"

namespace mocc::bench {

/// Copies every registry instrument into the benchmark's custom
/// counters: counters and gauges by name, histograms as <name>_n /
/// <name>_mean / <name>_p99.
inline void export_metrics(::benchmark::State& state, const obs::Registry& registry) {
  for (const auto& [name, counter] : registry.counters()) {
    state.counters[name] = static_cast<double>(counter.value());
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    state.counters[name] = gauge.value();
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    state.counters[name + "_n"] = static_cast<double>(histogram.count());
    state.counters[name + "_mean"] = histogram.mean();
    state.counters[name + "_p99"] = histogram.percentile(99.0);
  }
}

/// Standard latency counters from a workload report (q_n/q_mean/q_p99,
/// u_n/u_mean/u_p99, queries, updates). Goes through the registry so an
/// empty latency class still reports explicit zeros — every run of an
/// experiment exposes the same counter set.
inline void set_latency_counters(::benchmark::State& state,
                                 const protocols::WorkloadReport& report) {
  obs::Registry registry;
  register_latency_metrics(registry, report);
  export_metrics(state, registry);
}

/// Whole-run counters (latency + mops/msgs/bytes/virtual_time/
/// msg_per_op/bytes_per_op/tput, audit_ok when audited).
inline void set_run_counters(::benchmark::State& state, const RunResult& result) {
  obs::Registry registry;
  register_run_metrics(registry, result);
  export_metrics(state, registry);
}

/// Multicore-engine counters for E10 (exec_committed, exec_abort_*,
/// exec_retries_{n,mean,p99}, exec_abort_rate, exec_tput_mops). Routed
/// through register_exec_metrics so a result with zero committed
/// m-operations — the all-abort corner — still exports every key with
/// explicit zeros, the same schema-stability contract as
/// set_latency_counters.
inline void set_exec_counters(::benchmark::State& state,
                              const exec::ExecResult& result) {
  obs::Registry registry;
  register_exec_metrics(registry, result, /*include_wallclock=*/true);
  export_metrics(state, registry);
}

}  // namespace mocc::bench
