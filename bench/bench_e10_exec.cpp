// E10 — Multicore execution engine: committed m-ops/sec vs threads and
// contention.
//
// Real threads, one shared store, OCC commit (src/exec): each point
// runs a fixed total m-operation budget split across the workers and
// reports wall-clock throughput (this binary is where wall time IS the
// measurement — the JSON artifact's E10 records zero the gauge in smoke
// mode instead). The contention legs match run_e10: "low" spreads a
// 4-object footprint uniformly over 4096 objects, "high" drives
// zipf(0.9) skew into 64 objects so validation and lock aborts actually
// happen. The post-run admissibility verdict is exported as verify_ok
// so a throughput number from an unverified run cannot be quoted by
// accident.
//
// Counters: exec_committed, exec_abort_validation, exec_abort_lock,
// exec_abandoned, exec_retries_{n,mean,p99}, exec_abort_rate,
// exec_tput_mops, verify_ok, verify_windows.
#include "common.hpp"

#include "exec/verify.hpp"

namespace mocc::bench {
namespace {

void Exec(::benchmark::State& state, std::size_t threads, std::size_t objects,
          double zipf_skew, bool audit) {
  exec::ExecResult result;
  exec::VerifyReport verdict;
  for (auto _ : state) {
    exec::ExecConfig config;
    config.threads = threads;
    config.objects = objects;
    config.mops_per_thread = 100000 / threads;
    config.footprint = 4;
    config.query_ratio = 0.4;
    config.rmw_ratio = 0.5;
    config.zipf_skew = zipf_skew;
    config.seed = 42;
    result = exec::run(config);
    // Pause: the verdict is correctness accounting, not the measured
    // hot path.
    state.PauseTiming();
    exec::VerifyOptions verify;
    verify.run_audit = audit;
    verdict = exec::verify_execution(result, verify);
    state.ResumeTiming();
  }
  set_exec_counters(state, result);
  state.counters["verify_ok"] = verdict.ok ? 1.0 : 0.0;
  state.counters["verify_windows"] = static_cast<double>(verdict.windows);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * result.stats.committed));
}

void register_all() {
  struct Leg {
    const char* name;
    std::size_t objects;
    double zipf_skew;
    bool audit;
  };
  // Audit on the high-contention leg only, as in run_e10: the P5.x pass
  // is quadratic per window and the low-contention legs abort ~never.
  constexpr Leg kLegs[] = {{"low", 4096, 0.0, false}, {"high", 64, 0.9, true}};
  for (const Leg& leg : kLegs) {
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      auto* b = ::benchmark::RegisterBenchmark(
          (std::string("E10/exec/") + leg.name + "/t" + std::to_string(threads))
              .c_str(),
          [threads, leg](::benchmark::State& state) {
            Exec(state, threads, leg.objects, leg.zipf_skew, leg.audit);
          });
      b->Iterations(1)->Unit(::benchmark::kMillisecond)->UseRealTime();
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mocc::bench
