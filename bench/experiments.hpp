// Experiment suite E1-E10 as a library: shared run helpers, the metrics
// each experiment registers (through obs::Registry), and the
// machine-readable record schema behind BENCH_results.json.
//
// Two front ends build on this:
//   - bench/report_main.cpp (`bench_report`): runs the suite and writes
//     the schema-versioned JSON artifact (tools/run_bench.sh wraps it);
//   - the bench_e*.cpp google-benchmark binaries: wall-clock timing of
//     the same configurations, exporting the same registry metrics as
//     benchmark counters (see common.hpp).
//
// Everything recorded here is a deterministic function of the seeds —
// virtual-time latencies, message counts, checker states visited — so a
// fixed-seed rerun serializes byte-identically (golden-tested by
// tests/bench_report_test.cpp). Wall-clock measurements stay in the
// google-benchmark binaries, never in the JSON artifact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "api/system.hpp"
#include "exec/engine.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocols/workload.hpp"

namespace mocc::bench {

/// Bumped whenever a field changes meaning or moves; consumers of
/// BENCH_results.json must check it (documented in docs/observability.md).
inline constexpr int kBenchSchemaVersion = 1;

/// Additive schema revisions: the header gains a "schema_minor" field
/// carrying the HIGHEST revision whose metric names actually appear in
/// the record set. Minor 1 is E8's fault/link metrics; minor 2 is the
/// span phase-breakdown series (--spans); minor 3 is E9's batch-size
/// series. Artifacts using none serialize exactly as minor 0 did, and
/// E8 artifacts without span metrics still say 1, so every pre-existing
/// fixed-seed golden stays byte-identical.
inline constexpr int kBenchSchemaMinorFaults = 1;
inline constexpr int kBenchSchemaMinorSpans = 2;
inline constexpr int kBenchSchemaMinorBatching = 3;
/// Minor 4 is E10's multicore-engine series (exec_committed et al.).
inline constexpr int kBenchSchemaMinorExec = 4;
/// Minor 5 is E11's streaming-audit series (audit_windows_passed et al.).
inline constexpr int kBenchSchemaMinorStreaming = 5;
inline constexpr int kBenchSchemaVersionMinor = kBenchSchemaMinorStreaming;

/// Latency histogram shape shared by every experiment: virtual-tick
/// latencies land in [0, 4096) at 4-tick resolution, which covers every
/// delay model's tail at the benchmarked scales (overflow is still
/// counted and still feeds mean/min/max exactly).
inline constexpr double kLatencyLo = 0.0;
inline constexpr double kLatencyHi = 4096.0;
inline constexpr std::size_t kLatencyBuckets = 1024;

/// Ring capacity for span-enabled runs: comfortably above the busiest
/// full-sweep point's event volume, so register_span_metrics can insist
/// on a drop-free (non-truncated) trace.
inline constexpr std::size_t kSpanRingCapacity = std::size_t{1} << 19;

/// Virtual-time interval of the backlog probe attached to span-enabled
/// runs (SystemConfig::backlog_sample_interval) — deterministic, so the
/// sampled gauges are too.
inline constexpr sim::SimTime kBacklogSampleInterval = 64;

struct RunResult {
  protocols::WorkloadReport report;
  sim::TrafficStats traffic;
  sim::SimTime virtual_time = 0;
  bool audit_ran = false;
  bool audit_ok = false;  // meaningful only when audit_ran
  std::size_t history_size = 0;
  /// Fault-injection accounting (all zero when config.faults disabled).
  fault::FaultStats faults;
  /// Aggregate reliable-link counters (all zero when the link is off).
  fault::LinkStats link;
  std::size_t link_failures = 0;  ///< retry-budget exhaustions
  /// Last backlog-probe sample (all zero unless the config set
  /// backlog_sample_interval).
  api::System::BacklogSample backlog;
};

/// Builds a system, drives the closed-loop workload, and collects the
/// metrics every simulation experiment reports. When `trace` is non-null
/// it is attached for the duration of the run and receives every message
/// / m-op / lock / abcast event.
RunResult run_experiment(const api::SystemConfig& config,
                         const protocols::WorkloadParams& params,
                         bool run_audit = false, obs::TraceSink* trace = nullptr);

/// Registers the per-class latency metrics from a workload report:
/// counters `queries` / `updates` and histograms `q` / `u`.
///
/// Always registers all four, even for a run whose query (or update)
/// class is empty — an explicit zero-count histogram, not an absent key.
/// (The previous bench helper silently dropped empty classes, so an
/// update-only run produced a different schema than a mixed run and
/// downstream table generators needed per-experiment special cases.)
void register_latency_metrics(obs::Registry& registry,
                              const protocols::WorkloadReport& report);

/// Latency metrics plus the whole-run series every simulation experiment
/// shares: counters `mops` / `msgs` / `bytes`, gauges `virtual_time` /
/// `msg_per_op` / `bytes_per_op` / `tput` (completed m-ops per 1000
/// virtual ticks), and — when the run audited — gauge `audit_ok`.
void register_run_metrics(obs::Registry& registry, const RunResult& result);

/// Fault and reliable-link series for E8 records: counters
/// `fault_drops` / `fault_duplicates` / `fault_delay_spikes` /
/// `fault_partition_drops`, `link_data` / `link_retransmits` /
/// `link_acks` / `link_dedup` / `link_exhausted`, and gauge
/// `retransmit_rate` (resends per first transmission). Kept separate
/// from register_run_metrics so fault-free experiments keep their
/// pre-fault schema.
void register_fault_metrics(obs::Registry& registry, const RunResult& result);

/// Span-derived series for span-enabled records (schema minor 2):
/// critical-path phase histograms `phase_queue` / `phase_agree` /
/// `phase_lock` / `phase_net` (one sample per completed m-operation,
/// summing exactly to its end-to-end virtual latency), the sink's
/// `trace_events_*` / `trace_spans_*` drop accounting, and the backlog
/// gauges `sim_event_queue_depth` / `link_retransmit_buffer_bytes`.
/// `sink` must be the sink `result`'s run emitted into; aborts if the
/// ring dropped anything (a truncated trace cannot be attributed).
void register_span_metrics(obs::Registry& registry,
                           const obs::RingBufferSink& sink,
                           const RunResult& result);

/// Multicore-engine series for E10 records (schema minor 4): counters
/// `exec_committed` / `exec_abort_validation` / `exec_abort_lock` /
/// `exec_abandoned`, histogram `exec_retries` (one sample per committed
/// m-operation: attempts beyond the first), and gauges `exec_abort_rate`
/// (aborted attempts per attempt, 0 when nothing was attempted — the
/// all-abort/empty corner stays schema-stable with explicit zeros, the
/// same contract as register_latency_metrics) and `exec_tput_mops`
/// (committed m-ops per microsecond of wall clock). Wall clock is the
/// one non-deterministic input, so `include_wallclock=false` — used by
/// every smoke/golden record — pins the gauge to exactly 0.
void register_exec_metrics(obs::Registry& registry,
                           const exec::ExecResult& result,
                           bool include_wallclock);

/// Streaming-audit series for E11 records (schema minor 5): the
/// auditor's progress counters `audit_mops` / `audit_windows` /
/// `audit_windows_passed` / `audit_windows_failed` /
/// `audit_windows_undecided` and gauge `audit_verdict` (0 ok,
/// 1 violation, 2 inconclusive) — the same names
/// StreamingAuditor::export_metrics publishes into time-series samples,
/// so artifact records and live streams read identically.
void register_streaming_metrics(obs::Registry& registry,
                                const obs::StreamingAuditor& auditor);

/// Batching series for E9 records (schema minor 3), read off the run's
/// batch_assign / batch_flush trace events: histograms
/// `batch_assign_size` (updates per sequencer position block) and
/// `batch_flush_items` (items per flushed frame, all batching layers)
/// plus counters `batch_assigns` / `batch_flushes`. Registered even for
/// the unbatched baseline (explicit zero counts, not absent keys) so
/// every E9 record shares one schema.
void register_batching_metrics(obs::Registry& registry,
                               const obs::RingBufferSink& sink);

/// One row of BENCH_results.json: a named configuration point of one
/// experiment plus everything measured there.
struct ExperimentRecord {
  enum class Audit : std::uint8_t { kNotApplicable, kOk, kFailed };

  std::string experiment;                      // "E1" .. "E8"
  std::string name;                            // "E1/query_latency/mseq/lan/n2"
  std::map<std::string, std::string> config;   // the exact sweep point
  obs::Registry metrics;
  sim::TrafficStats traffic;                   // zero for checker experiments
  Audit audit = Audit::kNotApplicable;
};

struct SuiteOptions {
  /// Reduced sweeps (CI-sized: seconds, not minutes). Every experiment
  /// still contributes records; only the grid shrinks.
  bool smoke = false;
  /// Subset of {"E1",..,"E10"}; empty = all.
  std::vector<std::string> only;
  /// Collect causal spans on the latency experiments (E1, E2, E8) and
  /// register the phase-breakdown series (schema minor 2). Off by
  /// default so existing artifacts keep their exact bytes.
  bool spans = false;
};

/// True when `experiment` is selected by `options.only` (or it is empty).
bool experiment_selected(const SuiteOptions& options, std::string_view experiment);

std::vector<ExperimentRecord> run_e1(const SuiteOptions& options);
std::vector<ExperimentRecord> run_e2(const SuiteOptions& options);
std::vector<ExperimentRecord> run_e3(const SuiteOptions& options);
std::vector<ExperimentRecord> run_e4(const SuiteOptions& options);
std::vector<ExperimentRecord> run_e5(const SuiteOptions& options);
std::vector<ExperimentRecord> run_e6(const SuiteOptions& options);
std::vector<ExperimentRecord> run_e7(const SuiteOptions& options);
/// E8: message overhead and delivery latency versus fault rate — the
/// reliable-link stack swept over drop rates, against a fault-free
/// baseline with the link detached.
std::vector<ExperimentRecord> run_e8(const SuiteOptions& options);
/// E9: hot-path batching — sequencer group-commit swept over batch
/// sizes (plus link-level coalescing on the "link" stack) against the
/// unbatched baseline, measuring the messages-per-update collapse and
/// the latency cost of the flush triggers. Audits run at every point.
std::vector<ExperimentRecord> run_e9(const SuiteOptions& options);
/// E10: the multicore execution engine (src/exec) — threads x
/// object-count x contention sweep of OCC commit throughput and abort
/// rate, every point's merged history re-checked by the admissibility
/// stack (fast check everywhere; the P5.x audit on the high-contention
/// legs, where aborts actually occur). Smoke mode runs the
/// single-thread points only: with one worker the engine is
/// deterministic end to end and the record — wall-clock gauge pinned to
/// zero — is golden-tested byte-for-byte like every simulator record.
std::vector<ExperimentRecord> run_e10(const SuiteOptions& options);
/// E11: streaming-audit overhead — E1-shaped (clean) and E8-shaped
/// (faulty, reliable-link) mlin runs, each in three audit modes: `off`
/// (no sink attached), `stream` (a StreamingAuditor consumes the trace
/// tap online, small windows so several cuts land even in smoke runs),
/// and `posthoc` (ring-buffer sink, whole trace audited after the run).
/// The JSON records carry only deterministic series (virtual time,
/// messages, audit windows); the wall-clock ≤2x overhead claim is
/// measured by the bench_e11_streaming google-benchmark binary.
std::vector<ExperimentRecord> run_e11(const SuiteOptions& options);

/// Runs every selected experiment in order. Deterministic: same options
/// → identical records. (One exception: E10's full-mode multi-thread
/// points carry wall-clock throughput and scheduler-dependent abort
/// counts; its smoke points — single-thread, wall-clock gauge zeroed —
/// are as deterministic as every other experiment.)
std::vector<ExperimentRecord> run_suite(const SuiteOptions& options);

/// Serializes records as the schema documented in docs/observability.md.
/// Byte-deterministic: map iteration is sorted and doubles use shortest
/// round-trip formatting, so fixed-seed reruns compare equal with cmp(1).
void write_records_json(std::ostream& out,
                        const std::vector<ExperimentRecord>& records,
                        const SuiteOptions& options);

/// Renders records as per-experiment util::Table blocks (the form the
/// EXPERIMENTS.md tables are regenerated from).
void print_records(std::ostream& out, const std::vector<ExperimentRecord>& records);

/// Runs one small fixed-seed mlin workload with a ring-buffer sink
/// attached and writes the full captured trace — header line, events,
/// spans — as JSONL (--trace demo; loadable by trace_query).
void write_demo_trace(std::ostream& out);

}  // namespace mocc::bench
