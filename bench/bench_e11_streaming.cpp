// E11 — Streaming-audit overhead: wall-clock cost of auditing a run
// WHILE it executes versus not auditing at all versus auditing the
// captured trace afterwards.
//
// Acceptance bar (ISSUE/EXPERIMENTS.md): on the smoke-sized E1/E8
// shapes, the `stream` mode must stay within 2x of the `off` mode's
// wall time — the incremental window checks ride the simulator's event
// loop, so the overhead is the per-window fast check, not a re-run of
// the whole history per event. `posthoc` bounds the comparison: it pays
// the same checker cost once at the end plus the ring capture.
//
// Counters: wall time per mode (google-benchmark's own timing), plus
// the run's virtual-time series and — in stream mode — the auditor's
// audit_windows / audit_mops progress counters.
#include "common.hpp"

#include "obs/analysis.hpp"
#include "obs/live.hpp"

namespace mocc::bench {
namespace {

enum class Mode { kOff, kStream, kPosthoc };

api::SystemConfig shape_config(bool faults) {
  api::SystemConfig config;
  config.protocol = "mlin";
  config.num_processes = 3;
  config.num_objects = 8;
  config.delay = "lan";
  config.seed = 77;
  if (faults) {
    config.reliable_link = true;
    config.link.initial_rto = 40;
    config.faults.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
    config.faults.default_link.drop_rate = 0.05;
    config.faults.default_link.duplicate_rate = 0.05;
  }
  return config;
}

void Streaming(::benchmark::State& state, bool faults, Mode mode) {
  const api::SystemConfig config = shape_config(faults);
  protocols::WorkloadParams params;
  params.ops_per_process = 25;
  params.update_ratio = 0.5;
  params.footprint = 2;

  RunResult result;
  obs::Registry audit_metrics;
  for (auto _ : state) {
    switch (mode) {
      case Mode::kOff:
        result = run_experiment(config, params, /*run_audit=*/false);
        break;
      case Mode::kStream: {
        obs::StreamingAuditorOptions live;
        live.condition = core::Condition::kMLinearizability;
        live.window = 16;
        obs::StreamingAuditor auditor(live);
        result = run_experiment(config, params, /*run_audit=*/false, &auditor);
        auditor.finish();
        MOCC_ASSERT_MSG(!auditor.violated(), "correct protocol flagged");
        auditor.export_metrics(audit_metrics);
        break;
      }
      case Mode::kPosthoc: {
        obs::RingBufferSink sink(kSpanRingCapacity);
        result = run_experiment(config, params, /*run_audit=*/false, &sink);
        obs::TraceFile trace;
        trace.has_header = true;
        trace.events = sink.events();
        trace.spans = sink.spans();
        const obs::TraceAudit audit = obs::audit_from_trace(
            trace, core::Condition::kMLinearizability);
        MOCC_ASSERT_MSG(audit.ok, "correct protocol flagged post-hoc");
        audit_metrics.gauge("posthoc_audit_ok").set(audit.ok ? 1.0 : 0.0);
        break;
      }
    }
  }
  set_run_counters(state, result);
  export_metrics(state, audit_metrics);
}

void register_all() {
  for (const bool faults : {false, true}) {
    const std::string shape = faults ? "faults" : "clean";
    const std::pair<const char*, Mode> modes[] = {
        {"off", Mode::kOff}, {"stream", Mode::kStream},
        {"posthoc", Mode::kPosthoc}};
    for (const auto& [name, mode] : modes) {
      auto* b = ::benchmark::RegisterBenchmark(
          ("E11/streaming/" + shape + "/" + name).c_str(),
          [faults, mode](::benchmark::State& state) {
            Streaming(state, faults, mode);
          });
      b->Unit(::benchmark::kMillisecond);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mocc::bench
