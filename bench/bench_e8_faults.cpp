// E8 — Fault tolerance: message overhead and delivery latency vs fault
// rate.
//
// The §5 protocols assume reliable channels; src/fault discharges that
// assumption with an ack/retransmit link under seed-driven drop and
// duplication. This sweep measures what the discharge costs: msg_per_op
// grows with the drop rate (acks double the baseline; retransmits add
// the tail) and latency tails stretch by the retransmit timeout, while
// audit_ok must stay 1 at every point — the consistency conditions are
// non-negotiable, only the price moves.
//
// Counters: q_mean, u_mean, q_p99, u_p99, msg_per_op, retransmit_rate,
// fault_drops, link_retransmits, link_dedup, audit_ok.
#include "common.hpp"

namespace mocc::bench {
namespace {

void Faults(::benchmark::State& state, const std::string& protocol, int drop_pct,
            bool link_on) {
  RunResult result;
  for (auto _ : state) {
    api::SystemConfig config;
    config.protocol = protocol;
    config.num_processes = 4;
    config.num_objects = 8;
    config.delay = "lan";
    config.seed = 77;
    if (link_on) {
      config.reliable_link = true;
      // Above the worst-case lan RTT, as in run_e8: isolates real loss
      // recovery from spurious timeout retransmits.
      config.link.initial_rto = 40;
      config.faults.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
      config.faults.default_link.drop_rate = drop_pct / 100.0;
      config.faults.default_link.duplicate_rate = 0.05;
    }
    protocols::WorkloadParams params;
    params.ops_per_process = 25;
    params.update_ratio = 0.5;
    params.footprint = 2;
    result = run_experiment(config, params, /*run_audit=*/true);
  }
  set_run_counters(state, result);
  obs::Registry registry;
  register_fault_metrics(registry, result);
  export_metrics(state, registry);
}

void register_all() {
  for (const char* protocol : {"mseq", "mlin"}) {
    auto* baseline = ::benchmark::RegisterBenchmark(
        (std::string("E8/faults/") + protocol + "/drop0/raw").c_str(),
        [protocol](::benchmark::State& state) { Faults(state, protocol, 0, false); });
    baseline->Iterations(1)->Unit(::benchmark::kMillisecond);
    for (const int drop_pct : {0, 2, 5, 10}) {
      auto* b = ::benchmark::RegisterBenchmark(
          (std::string("E8/faults/") + protocol + "/drop" +
           std::to_string(drop_pct) + "/link")
              .c_str(),
          [protocol, drop_pct](::benchmark::State& state) {
            Faults(state, protocol, drop_pct, true);
          });
      b->Iterations(1)->Unit(::benchmark::kMillisecond);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mocc::bench
