// E6 — The §5 protocols vs a 2PL deployment vs the aggregate-object
// strawman.
//
// Paper hooks:
//   §1: "if there are n read-write registers and one multi-method sum …
//   the technique will force all registers to be treated as one object.
//   This results in loss of locality and concurrency." — the `aggregate`
//   baseline IS that technique; expect throughput to flatline as objects
//   grow because everything serializes through one lock.
//   §5: the broadcast protocols pay one abcast per update regardless of
//   footprint, while conservative 2PL pays one sequential lock round
//   trip per object — expect locking latency to grow linearly with
//   footprint while mseq/mlin stay flat.
//
// Throughput = completed m-operations per 1000 virtual ticks.
// Counters: tput, u_mean, q_mean.
#include "common.hpp"

namespace mocc::bench {
namespace {

void Baselines(::benchmark::State& state, const std::string& protocol,
               std::size_t num_objects, std::size_t footprint) {
  RunResult result;
  for (auto _ : state) {
    api::SystemConfig config;
    config.protocol = protocol;
    config.num_processes = 8;
    config.num_objects = num_objects;
    config.delay = "lan";
    config.seed = 5 + state.iterations();
    protocols::WorkloadParams params;
    params.ops_per_process = 30;
    params.update_ratio = 0.5;
    params.footprint = footprint;
    result = run_experiment(config, params);
  }
  // tput = ops per 1000 virtual ticks, from the run's quiescence time.
  set_run_counters(state, result);
}

void register_all() {
  for (const char* protocol : {"mseq", "mlin", "locking", "aggregate"}) {
    // Concurrency sweep: more objects = less contention; the aggregate
    // strawman cannot exploit it.
    for (const std::size_t objects : {2, 8, 32}) {
      auto* b = ::benchmark::RegisterBenchmark(
          (std::string("E6/objects/") + protocol + "/x" + std::to_string(objects)).c_str(),
          [protocol, objects](::benchmark::State& state) {
            Baselines(state, protocol, objects, 2);
          });
      b->Iterations(1)->Unit(::benchmark::kMillisecond);
    }
    // Footprint sweep: broadcast pays one abcast regardless; 2PL pays
    // one lock round trip per object.
    for (const std::size_t footprint : {1, 2, 4, 8}) {
      auto* b = ::benchmark::RegisterBenchmark(
          (std::string("E6/footprint/") + protocol + "/f" + std::to_string(footprint)).c_str(),
          [protocol, footprint](::benchmark::State& state) {
            Baselines(state, protocol, 32, footprint);
          });
      b->Iterations(1)->Unit(::benchmark::kMillisecond);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mocc::bench
