file(REMOVE_RECURSE
  "CMakeFiles/mocc_mscript.dir/builder.cpp.o"
  "CMakeFiles/mocc_mscript.dir/builder.cpp.o.d"
  "CMakeFiles/mocc_mscript.dir/library.cpp.o"
  "CMakeFiles/mocc_mscript.dir/library.cpp.o.d"
  "CMakeFiles/mocc_mscript.dir/program.cpp.o"
  "CMakeFiles/mocc_mscript.dir/program.cpp.o.d"
  "CMakeFiles/mocc_mscript.dir/vm.cpp.o"
  "CMakeFiles/mocc_mscript.dir/vm.cpp.o.d"
  "libmocc_mscript.a"
  "libmocc_mscript.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocc_mscript.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
