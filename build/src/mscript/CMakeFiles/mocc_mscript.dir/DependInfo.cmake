
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mscript/builder.cpp" "src/mscript/CMakeFiles/mocc_mscript.dir/builder.cpp.o" "gcc" "src/mscript/CMakeFiles/mocc_mscript.dir/builder.cpp.o.d"
  "/root/repo/src/mscript/library.cpp" "src/mscript/CMakeFiles/mocc_mscript.dir/library.cpp.o" "gcc" "src/mscript/CMakeFiles/mocc_mscript.dir/library.cpp.o.d"
  "/root/repo/src/mscript/program.cpp" "src/mscript/CMakeFiles/mocc_mscript.dir/program.cpp.o" "gcc" "src/mscript/CMakeFiles/mocc_mscript.dir/program.cpp.o.d"
  "/root/repo/src/mscript/vm.cpp" "src/mscript/CMakeFiles/mocc_mscript.dir/vm.cpp.o" "gcc" "src/mscript/CMakeFiles/mocc_mscript.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mocc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
