file(REMOVE_RECURSE
  "libmocc_mscript.a"
)
