# Empty dependencies file for mocc_mscript.
# This may be replaced when dependencies are built.
