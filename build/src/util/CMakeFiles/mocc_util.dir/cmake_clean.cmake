file(REMOVE_RECURSE
  "CMakeFiles/mocc_util.dir/bytes.cpp.o"
  "CMakeFiles/mocc_util.dir/bytes.cpp.o.d"
  "CMakeFiles/mocc_util.dir/cli.cpp.o"
  "CMakeFiles/mocc_util.dir/cli.cpp.o.d"
  "CMakeFiles/mocc_util.dir/log.cpp.o"
  "CMakeFiles/mocc_util.dir/log.cpp.o.d"
  "CMakeFiles/mocc_util.dir/relation.cpp.o"
  "CMakeFiles/mocc_util.dir/relation.cpp.o.d"
  "CMakeFiles/mocc_util.dir/rng.cpp.o"
  "CMakeFiles/mocc_util.dir/rng.cpp.o.d"
  "CMakeFiles/mocc_util.dir/stats.cpp.o"
  "CMakeFiles/mocc_util.dir/stats.cpp.o.d"
  "CMakeFiles/mocc_util.dir/table.cpp.o"
  "CMakeFiles/mocc_util.dir/table.cpp.o.d"
  "CMakeFiles/mocc_util.dir/timestamp.cpp.o"
  "CMakeFiles/mocc_util.dir/timestamp.cpp.o.d"
  "libmocc_util.a"
  "libmocc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
