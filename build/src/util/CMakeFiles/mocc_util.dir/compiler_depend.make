# Empty compiler generated dependencies file for mocc_util.
# This may be replaced when dependencies are built.
