# Empty dependencies file for mocc_util.
# This may be replaced when dependencies are built.
