file(REMOVE_RECURSE
  "libmocc_util.a"
)
