file(REMOVE_RECURSE
  "libmocc_sim.a"
)
