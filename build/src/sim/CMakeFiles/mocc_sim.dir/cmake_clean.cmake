file(REMOVE_RECURSE
  "CMakeFiles/mocc_sim.dir/delay.cpp.o"
  "CMakeFiles/mocc_sim.dir/delay.cpp.o.d"
  "CMakeFiles/mocc_sim.dir/simulator.cpp.o"
  "CMakeFiles/mocc_sim.dir/simulator.cpp.o.d"
  "libmocc_sim.a"
  "libmocc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
