# Empty compiler generated dependencies file for mocc_sim.
# This may be replaced when dependencies are built.
