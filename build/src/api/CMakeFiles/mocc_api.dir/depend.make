# Empty dependencies file for mocc_api.
# This may be replaced when dependencies are built.
