file(REMOVE_RECURSE
  "libmocc_api.a"
)
