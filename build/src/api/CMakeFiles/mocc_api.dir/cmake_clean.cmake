file(REMOVE_RECURSE
  "CMakeFiles/mocc_api.dir/system.cpp.o"
  "CMakeFiles/mocc_api.dir/system.cpp.o.d"
  "libmocc_api.a"
  "libmocc_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocc_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
