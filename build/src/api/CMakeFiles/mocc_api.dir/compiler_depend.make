# Empty compiler generated dependencies file for mocc_api.
# This may be replaced when dependencies are built.
