# Empty compiler generated dependencies file for mocc_objects.
# This may be replaced when dependencies are built.
