file(REMOVE_RECURSE
  "libmocc_objects.a"
)
