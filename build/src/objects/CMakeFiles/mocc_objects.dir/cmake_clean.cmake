file(REMOVE_RECURSE
  "CMakeFiles/mocc_objects.dir/objects.cpp.o"
  "CMakeFiles/mocc_objects.dir/objects.cpp.o.d"
  "libmocc_objects.a"
  "libmocc_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocc_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
