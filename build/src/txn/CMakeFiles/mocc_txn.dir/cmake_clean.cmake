file(REMOVE_RECURSE
  "CMakeFiles/mocc_txn.dir/generate.cpp.o"
  "CMakeFiles/mocc_txn.dir/generate.cpp.o.d"
  "CMakeFiles/mocc_txn.dir/reduction.cpp.o"
  "CMakeFiles/mocc_txn.dir/reduction.cpp.o.d"
  "CMakeFiles/mocc_txn.dir/schedule.cpp.o"
  "CMakeFiles/mocc_txn.dir/schedule.cpp.o.d"
  "CMakeFiles/mocc_txn.dir/serializability.cpp.o"
  "CMakeFiles/mocc_txn.dir/serializability.cpp.o.d"
  "libmocc_txn.a"
  "libmocc_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocc_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
