# Empty dependencies file for mocc_txn.
# This may be replaced when dependencies are built.
