file(REMOVE_RECURSE
  "libmocc_txn.a"
)
