
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/generate.cpp" "src/txn/CMakeFiles/mocc_txn.dir/generate.cpp.o" "gcc" "src/txn/CMakeFiles/mocc_txn.dir/generate.cpp.o.d"
  "/root/repo/src/txn/reduction.cpp" "src/txn/CMakeFiles/mocc_txn.dir/reduction.cpp.o" "gcc" "src/txn/CMakeFiles/mocc_txn.dir/reduction.cpp.o.d"
  "/root/repo/src/txn/schedule.cpp" "src/txn/CMakeFiles/mocc_txn.dir/schedule.cpp.o" "gcc" "src/txn/CMakeFiles/mocc_txn.dir/schedule.cpp.o.d"
  "/root/repo/src/txn/serializability.cpp" "src/txn/CMakeFiles/mocc_txn.dir/serializability.cpp.o" "gcc" "src/txn/CMakeFiles/mocc_txn.dir/serializability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mocc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mocc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mscript/CMakeFiles/mocc_mscript.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
