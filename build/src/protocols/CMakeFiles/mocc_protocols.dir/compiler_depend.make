# Empty compiler generated dependencies file for mocc_protocols.
# This may be replaced when dependencies are built.
