file(REMOVE_RECURSE
  "libmocc_protocols.a"
)
