file(REMOVE_RECURSE
  "CMakeFiles/mocc_protocols.dir/locking_replica.cpp.o"
  "CMakeFiles/mocc_protocols.dir/locking_replica.cpp.o.d"
  "CMakeFiles/mocc_protocols.dir/mlin_replica.cpp.o"
  "CMakeFiles/mocc_protocols.dir/mlin_replica.cpp.o.d"
  "CMakeFiles/mocc_protocols.dir/mseq_replica.cpp.o"
  "CMakeFiles/mocc_protocols.dir/mseq_replica.cpp.o.d"
  "CMakeFiles/mocc_protocols.dir/recorder.cpp.o"
  "CMakeFiles/mocc_protocols.dir/recorder.cpp.o.d"
  "CMakeFiles/mocc_protocols.dir/workload.cpp.o"
  "CMakeFiles/mocc_protocols.dir/workload.cpp.o.d"
  "libmocc_protocols.a"
  "libmocc_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocc_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
