
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/locking_replica.cpp" "src/protocols/CMakeFiles/mocc_protocols.dir/locking_replica.cpp.o" "gcc" "src/protocols/CMakeFiles/mocc_protocols.dir/locking_replica.cpp.o.d"
  "/root/repo/src/protocols/mlin_replica.cpp" "src/protocols/CMakeFiles/mocc_protocols.dir/mlin_replica.cpp.o" "gcc" "src/protocols/CMakeFiles/mocc_protocols.dir/mlin_replica.cpp.o.d"
  "/root/repo/src/protocols/mseq_replica.cpp" "src/protocols/CMakeFiles/mocc_protocols.dir/mseq_replica.cpp.o" "gcc" "src/protocols/CMakeFiles/mocc_protocols.dir/mseq_replica.cpp.o.d"
  "/root/repo/src/protocols/recorder.cpp" "src/protocols/CMakeFiles/mocc_protocols.dir/recorder.cpp.o" "gcc" "src/protocols/CMakeFiles/mocc_protocols.dir/recorder.cpp.o.d"
  "/root/repo/src/protocols/workload.cpp" "src/protocols/CMakeFiles/mocc_protocols.dir/workload.cpp.o" "gcc" "src/protocols/CMakeFiles/mocc_protocols.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abcast/CMakeFiles/mocc_abcast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mocc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mocc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mscript/CMakeFiles/mocc_mscript.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mocc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
