file(REMOVE_RECURSE
  "CMakeFiles/mocc_core.dir/admissibility.cpp.o"
  "CMakeFiles/mocc_core.dir/admissibility.cpp.o.d"
  "CMakeFiles/mocc_core.dir/audit.cpp.o"
  "CMakeFiles/mocc_core.dir/audit.cpp.o.d"
  "CMakeFiles/mocc_core.dir/constraints.cpp.o"
  "CMakeFiles/mocc_core.dir/constraints.cpp.o.d"
  "CMakeFiles/mocc_core.dir/fast_check.cpp.o"
  "CMakeFiles/mocc_core.dir/fast_check.cpp.o.d"
  "CMakeFiles/mocc_core.dir/generate.cpp.o"
  "CMakeFiles/mocc_core.dir/generate.cpp.o.d"
  "CMakeFiles/mocc_core.dir/history.cpp.o"
  "CMakeFiles/mocc_core.dir/history.cpp.o.d"
  "CMakeFiles/mocc_core.dir/legality.cpp.o"
  "CMakeFiles/mocc_core.dir/legality.cpp.o.d"
  "CMakeFiles/mocc_core.dir/moperation.cpp.o"
  "CMakeFiles/mocc_core.dir/moperation.cpp.o.d"
  "CMakeFiles/mocc_core.dir/relations.cpp.o"
  "CMakeFiles/mocc_core.dir/relations.cpp.o.d"
  "CMakeFiles/mocc_core.dir/serialize.cpp.o"
  "CMakeFiles/mocc_core.dir/serialize.cpp.o.d"
  "libmocc_core.a"
  "libmocc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
