file(REMOVE_RECURSE
  "libmocc_core.a"
)
