# Empty dependencies file for mocc_core.
# This may be replaced when dependencies are built.
