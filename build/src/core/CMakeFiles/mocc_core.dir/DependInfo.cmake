
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admissibility.cpp" "src/core/CMakeFiles/mocc_core.dir/admissibility.cpp.o" "gcc" "src/core/CMakeFiles/mocc_core.dir/admissibility.cpp.o.d"
  "/root/repo/src/core/audit.cpp" "src/core/CMakeFiles/mocc_core.dir/audit.cpp.o" "gcc" "src/core/CMakeFiles/mocc_core.dir/audit.cpp.o.d"
  "/root/repo/src/core/constraints.cpp" "src/core/CMakeFiles/mocc_core.dir/constraints.cpp.o" "gcc" "src/core/CMakeFiles/mocc_core.dir/constraints.cpp.o.d"
  "/root/repo/src/core/fast_check.cpp" "src/core/CMakeFiles/mocc_core.dir/fast_check.cpp.o" "gcc" "src/core/CMakeFiles/mocc_core.dir/fast_check.cpp.o.d"
  "/root/repo/src/core/generate.cpp" "src/core/CMakeFiles/mocc_core.dir/generate.cpp.o" "gcc" "src/core/CMakeFiles/mocc_core.dir/generate.cpp.o.d"
  "/root/repo/src/core/history.cpp" "src/core/CMakeFiles/mocc_core.dir/history.cpp.o" "gcc" "src/core/CMakeFiles/mocc_core.dir/history.cpp.o.d"
  "/root/repo/src/core/legality.cpp" "src/core/CMakeFiles/mocc_core.dir/legality.cpp.o" "gcc" "src/core/CMakeFiles/mocc_core.dir/legality.cpp.o.d"
  "/root/repo/src/core/moperation.cpp" "src/core/CMakeFiles/mocc_core.dir/moperation.cpp.o" "gcc" "src/core/CMakeFiles/mocc_core.dir/moperation.cpp.o.d"
  "/root/repo/src/core/relations.cpp" "src/core/CMakeFiles/mocc_core.dir/relations.cpp.o" "gcc" "src/core/CMakeFiles/mocc_core.dir/relations.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/mocc_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/mocc_core.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mocc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mscript/CMakeFiles/mocc_mscript.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
