file(REMOVE_RECURSE
  "libmocc_abcast.a"
)
