file(REMOVE_RECURSE
  "CMakeFiles/mocc_abcast.dir/abcast.cpp.o"
  "CMakeFiles/mocc_abcast.dir/abcast.cpp.o.d"
  "CMakeFiles/mocc_abcast.dir/isis.cpp.o"
  "CMakeFiles/mocc_abcast.dir/isis.cpp.o.d"
  "CMakeFiles/mocc_abcast.dir/sequencer.cpp.o"
  "CMakeFiles/mocc_abcast.dir/sequencer.cpp.o.d"
  "libmocc_abcast.a"
  "libmocc_abcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocc_abcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
