# Empty dependencies file for mocc_abcast.
# This may be replaced when dependencies are built.
