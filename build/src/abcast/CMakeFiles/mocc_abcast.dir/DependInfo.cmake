
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abcast/abcast.cpp" "src/abcast/CMakeFiles/mocc_abcast.dir/abcast.cpp.o" "gcc" "src/abcast/CMakeFiles/mocc_abcast.dir/abcast.cpp.o.d"
  "/root/repo/src/abcast/isis.cpp" "src/abcast/CMakeFiles/mocc_abcast.dir/isis.cpp.o" "gcc" "src/abcast/CMakeFiles/mocc_abcast.dir/isis.cpp.o.d"
  "/root/repo/src/abcast/sequencer.cpp" "src/abcast/CMakeFiles/mocc_abcast.dir/sequencer.cpp.o" "gcc" "src/abcast/CMakeFiles/mocc_abcast.dir/sequencer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mocc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mocc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
