# Empty compiler generated dependencies file for core_figures_test.
# This may be replaced when dependencies are built.
