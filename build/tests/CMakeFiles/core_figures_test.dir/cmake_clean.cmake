file(REMOVE_RECURSE
  "CMakeFiles/core_figures_test.dir/core_figures_test.cpp.o"
  "CMakeFiles/core_figures_test.dir/core_figures_test.cpp.o.d"
  "core_figures_test"
  "core_figures_test.pdb"
  "core_figures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_figures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
