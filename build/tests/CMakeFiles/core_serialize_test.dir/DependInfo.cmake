
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_serialize_test.cpp" "tests/CMakeFiles/core_serialize_test.dir/core_serialize_test.cpp.o" "gcc" "tests/CMakeFiles/core_serialize_test.dir/core_serialize_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/objects/CMakeFiles/mocc_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/mocc_api.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/mocc_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/abcast/CMakeFiles/mocc_abcast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mocc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/mocc_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mocc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mscript/CMakeFiles/mocc_mscript.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mocc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
