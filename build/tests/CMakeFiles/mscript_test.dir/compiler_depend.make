# Empty compiler generated dependencies file for mscript_test.
# This may be replaced when dependencies are built.
