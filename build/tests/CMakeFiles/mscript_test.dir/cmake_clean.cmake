file(REMOVE_RECURSE
  "CMakeFiles/mscript_test.dir/mscript_test.cpp.o"
  "CMakeFiles/mscript_test.dir/mscript_test.cpp.o.d"
  "mscript_test"
  "mscript_test.pdb"
  "mscript_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscript_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
