# Empty compiler generated dependencies file for core_legality_test.
# This may be replaced when dependencies are built.
