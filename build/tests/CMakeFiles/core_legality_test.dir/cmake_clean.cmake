file(REMOVE_RECURSE
  "CMakeFiles/core_legality_test.dir/core_legality_test.cpp.o"
  "CMakeFiles/core_legality_test.dir/core_legality_test.cpp.o.d"
  "core_legality_test"
  "core_legality_test.pdb"
  "core_legality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_legality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
