# Empty compiler generated dependencies file for core_checker_test.
# This may be replaced when dependencies are built.
