# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/mscript_test[1]_include.cmake")
include("/root/repo/build/tests/core_model_test[1]_include.cmake")
include("/root/repo/build/tests/core_legality_test[1]_include.cmake")
include("/root/repo/build/tests/core_checker_test[1]_include.cmake")
include("/root/repo/build/tests/core_figures_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/abcast_test[1]_include.cmake")
include("/root/repo/build/tests/protocols_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/core_serialize_test[1]_include.cmake")
include("/root/repo/build/tests/audit_test[1]_include.cmake")
include("/root/repo/build/tests/objects_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
