# Empty compiler generated dependencies file for bench_e2_update_latency.
# This may be replaced when dependencies are built.
