file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_np_checker.dir/bench_e4_np_checker.cpp.o"
  "CMakeFiles/bench_e4_np_checker.dir/bench_e4_np_checker.cpp.o.d"
  "bench_e4_np_checker"
  "bench_e4_np_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_np_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
