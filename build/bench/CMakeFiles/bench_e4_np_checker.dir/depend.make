# Empty dependencies file for bench_e4_np_checker.
# This may be replaced when dependencies are built.
