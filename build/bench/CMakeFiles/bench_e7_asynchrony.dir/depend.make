# Empty dependencies file for bench_e7_asynchrony.
# This may be replaced when dependencies are built.
