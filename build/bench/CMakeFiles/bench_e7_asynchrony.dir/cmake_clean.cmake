file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_asynchrony.dir/bench_e7_asynchrony.cpp.o"
  "CMakeFiles/bench_e7_asynchrony.dir/bench_e7_asynchrony.cpp.o.d"
  "bench_e7_asynchrony"
  "bench_e7_asynchrony.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_asynchrony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
