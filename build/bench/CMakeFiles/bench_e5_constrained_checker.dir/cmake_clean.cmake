file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_constrained_checker.dir/bench_e5_constrained_checker.cpp.o"
  "CMakeFiles/bench_e5_constrained_checker.dir/bench_e5_constrained_checker.cpp.o.d"
  "bench_e5_constrained_checker"
  "bench_e5_constrained_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_constrained_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
