# Empty dependencies file for bench_e5_constrained_checker.
# This may be replaced when dependencies are built.
