# Empty compiler generated dependencies file for history_audit.
# This may be replaced when dependencies are built.
