file(REMOVE_RECURSE
  "CMakeFiles/history_audit.dir/history_audit.cpp.o"
  "CMakeFiles/history_audit.dir/history_audit.cpp.o.d"
  "history_audit"
  "history_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
