# Empty dependencies file for dcas_demo.
# This may be replaced when dependencies are built.
