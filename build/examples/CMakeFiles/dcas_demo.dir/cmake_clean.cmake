file(REMOVE_RECURSE
  "CMakeFiles/dcas_demo.dir/dcas_demo.cpp.o"
  "CMakeFiles/dcas_demo.dir/dcas_demo.cpp.o.d"
  "dcas_demo"
  "dcas_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcas_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
